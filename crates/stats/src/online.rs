//! Streaming moment statistics (Welford's algorithm).

/// Numerically stable streaming count / mean / variance / min / max.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Incorporate one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    #[inline]
    pub fn count(&self) -> u64 {
        self.n
    }
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Arithmetic mean; 0.0 when empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.mean() * self.n as f64
    }

    /// Population variance; 0.0 with fewer than 2 observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (Bessel-corrected) variance.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation; `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation; `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_moments() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), Some(3.5));
    }

    proptest! {
        /// merge(a, b) must equal pushing everything into one accumulator.
        #[test]
        fn merge_equals_sequential(xs in prop::collection::vec(-1e6f64..1e6, 0..200),
                                   split in 0usize..200) {
            let split = split.min(xs.len());
            let mut a: OnlineStats = xs[..split].iter().copied().collect();
            let b: OnlineStats = xs[split..].iter().copied().collect();
            a.merge(&b);
            let all: OnlineStats = xs.iter().copied().collect();
            prop_assert_eq!(a.count(), all.count());
            if !xs.is_empty() {
                prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
                prop_assert!((a.variance() - all.variance()).abs()
                             < 1e-4 * (1.0 + all.variance()));
            }
        }

        /// Variance is never negative and mean stays within [min, max].
        #[test]
        fn invariants(xs in prop::collection::vec(-1e9f64..1e9, 1..100)) {
            let s: OnlineStats = xs.iter().copied().collect();
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.mean() >= s.min().unwrap() - 1e-6);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-6);
        }
    }
}
