//! Histograms and empirical CDFs used to render Figure 9's distributions.

/// Fixed-width linear histogram over `[lo, hi)` with saturating edge bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations below `lo` / at-or-above `hi`.
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Create a histogram with `nbins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// If `nbins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of observations, including out-of-range ones.
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bin_low_edge, bin_high_edge, count)` triples.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * w, self.lo + (i + 1) as f64 * w, c))
    }
}

/// Logarithmic histogram: bin edges grow geometrically from `first_edge`.
/// Good for heavy-tailed quantities like persistence durations
/// (0.1 s … 1 day spans seven decades).
#[derive(Clone, Debug)]
pub struct LogHistogram {
    first_edge: f64,
    ratio: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl LogHistogram {
    /// `nbins` bins with edges `first_edge * ratio^i`.
    ///
    /// # Panics
    /// If `nbins == 0`, `first_edge <= 0`, or `ratio <= 1`.
    pub fn new(first_edge: f64, ratio: f64, nbins: usize) -> Self {
        assert!(nbins > 0 && first_edge > 0.0 && ratio > 1.0);
        LogHistogram {
            first_edge,
            ratio,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// A decade histogram from `lo` to `hi` with `per_decade` bins each
    /// factor of 10.
    pub fn decades(lo: f64, hi: f64, per_decade: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && per_decade > 0);
        let ratio = 10f64.powf(1.0 / per_decade as f64);
        let nbins = ((hi / lo).log10() * per_decade as f64).ceil() as usize;
        LogHistogram::new(lo, ratio, nbins.max(1))
    }

    pub fn push(&mut self, x: f64) {
        if !(x > 0.0) || x < self.first_edge {
            self.underflow += 1;
            return;
        }
        let idx = (x / self.first_edge).ln() / self.ratio.ln();
        let idx = idx as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(low_edge, high_edge, count)` triples.
    pub fn iter_bins(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.bins.iter().enumerate().map(move |(i, &c)| {
            let lo = self.first_edge * self.ratio.powi(i as i32);
            (lo, lo * self.ratio, c)
        })
    }
}

/// Empirical cumulative distribution function over a collected sample.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples (sorts a copy; NaN values sort to the top
    /// under `total_cmp` rather than panicking).
    pub fn new(samples: &[f64]) -> Self {
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        Ecdf { sorted }
    }

    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// P(X <= x); 0.0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point: count of elements <= x.
        let k = self.sorted.partition_point(|&v| v <= x);
        k as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse: smallest sample value v with P(X <= v) >= q.
    pub fn inverse(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Evenly spaced `(x, F(x))` points for plotting.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        (0..points)
            .map(|i| {
                let idx = (i * (n - 1)) / points.max(1).saturating_sub(1).max(1);
                let x = self.sorted[idx.min(n - 1)];
                (x, self.eval(x))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn linear_histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -1.0, 55.0] {
            h.push(x);
        }
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.count(), 7);
        let edges: Vec<_> = h.iter_bins().map(|(lo, hi, _)| (lo, hi)).collect();
        assert_eq!(edges[0], (0.0, 2.0));
        assert_eq!(edges[4], (8.0, 10.0));
    }

    #[test]
    fn log_histogram_decades() {
        let mut h = LogHistogram::decades(0.1, 1000.0, 1);
        for x in [0.15, 1.5, 15.0, 150.0, 0.05, 5000.0] {
            h.push(x);
        }
        assert_eq!(h.bins(), &[1, 1, 1, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn log_histogram_rejects_nonpositive() {
        let mut h = LogHistogram::decades(0.1, 10.0, 2);
        h.push(0.0);
        h.push(-3.0);
        assert_eq!(h.underflow(), 2);
    }

    #[test]
    fn ecdf_eval_and_inverse() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(100.0), 1.0);
        assert_eq!(e.inverse(0.5), Some(2.0));
        assert_eq!(e.inverse(1.0), Some(4.0));
        assert_eq!(e.inverse(0.0), Some(1.0));
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(&[]);
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.inverse(0.5), None);
        assert!(e.curve(10).is_empty());
    }

    proptest! {
        /// ECDF is monotone non-decreasing and maps into [0, 1].
        #[test]
        fn ecdf_monotone(xs in prop::collection::vec(-1e3f64..1e3, 1..100),
                         a in -2e3f64..2e3, b in -2e3f64..2e3) {
            let e = Ecdf::new(&xs);
            let (lo, hi) = (a.min(b), a.max(b));
            prop_assert!(e.eval(lo) <= e.eval(hi));
            prop_assert!((0.0..=1.0).contains(&e.eval(lo)));
        }

        /// Histogram conserves the observation count.
        #[test]
        fn histogram_conserves_count(xs in prop::collection::vec(-50.0f64..150.0, 0..300)) {
            let mut h = Histogram::new(0.0, 100.0, 7);
            for &x in &xs { h.push(x); }
            prop_assert_eq!(h.count(), xs.len() as u64);
        }
    }
}
