//! Distribution samplers and fitters.
//!
//! Implemented from first principles on `rand`'s uniform source (the
//! `rand_distr` crate is outside the allowed offline set): inverse-transform
//! sampling for Exp/Weibull/Pareto, Box–Muller for normals, cumulative
//! search for categorical mixtures.
//!
//! The fault generator uses these to shape inter-arrival times and error
//! persistence; the calibration helpers (e.g.
//! [`LogNormal::from_median_p95`]) construct distributions directly from the
//! quantiles Table 1 reports.

use rand::Rng;

/// A distribution over `f64` that can be sampled with any RNG.
pub trait Sampler {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64;
}

/// Draw a standard normal via Box–Muller.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would send ln to -inf.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exp {
    pub rate: f64,
}

impl Exp {
    /// # Panics
    /// If `rate` is not strictly positive and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "Exp rate must be positive");
        Exp { rate }
    }

    /// Exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        Exp::new(1.0 / mean)
    }

    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Maximum-likelihood fit: rate = 1 / sample mean.
    pub fn fit(samples: &[f64]) -> Option<Exp> {
        if samples.is_empty() {
            return None;
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        (mean > 0.0).then(|| Exp::with_mean(mean))
    }
}

impl Sampler for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        // 1 - u in (0, 1]; ln is finite.
        -(1.0 - u).ln() / self.rate
    }
}

/// Log-normal distribution: `exp(mu + sigma * N(0,1))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    pub mu: f64,
    pub sigma: f64,
}

/// z-score of the 95th percentile of the standard normal.
const Z95: f64 = 1.6448536269514722;

impl LogNormal {
    /// # Panics
    /// If `sigma` is negative or parameters are non-finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma >= 0.0 && mu.is_finite() && sigma.is_finite());
        LogNormal { mu, sigma }
    }

    /// Calibrate from a target median and 95th percentile
    /// (`p95 >= median > 0`). This is how persistence distributions are
    /// constructed from Table 1's P50/P95 columns.
    pub fn from_median_p95(median: f64, p95: f64) -> Self {
        assert!(median > 0.0 && p95 >= median, "need p95 >= median > 0");
        let mu = median.ln();
        let sigma = (p95.ln() - mu) / Z95;
        LogNormal::new(mu, sigma)
    }

    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    pub fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }

    pub fn p95(&self) -> f64 {
        (self.mu + Z95 * self.sigma).exp()
    }

    /// Maximum-likelihood fit over strictly positive samples.
    pub fn fit(samples: &[f64]) -> Option<LogNormal> {
        if samples.is_empty() || samples.iter().any(|&x| x <= 0.0) {
            return None;
        }
        let n = samples.len() as f64;
        let mu = samples.iter().map(|x| x.ln()).sum::<f64>() / n;
        let var = samples.iter().map(|x| (x.ln() - mu).powi(2)).sum::<f64>() / n;
        Some(LogNormal::new(mu, var.sqrt()))
    }
}

impl Sampler for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Weibull distribution with shape `k` and scale `lambda`.
///
/// `k < 1` models infant mortality (decreasing hazard, like defective GPUs
/// failing early in the testing phase); `k > 1` models wear-out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Weibull {
    pub shape: f64,
    pub scale: f64,
}

impl Weibull {
    /// # Panics
    /// If shape or scale is not strictly positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && scale > 0.0);
        Weibull { shape, scale }
    }

    pub fn median(&self) -> f64 {
        self.scale * core::f64::consts::LN_2.powf(1.0 / self.shape)
    }
}

impl Sampler for Weibull {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.scale * (-(1.0 - u).ln()).powf(1.0 / self.shape)
    }
}

/// Pareto (power-law) distribution with minimum `xm` and index `alpha`.
/// Used for heavy-tailed job durations.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    pub xm: f64,
    pub alpha: f64,
}

impl Pareto {
    /// # Panics
    /// If `xm` or `alpha` is not strictly positive.
    pub fn new(xm: f64, alpha: f64) -> Self {
        assert!(xm > 0.0 && alpha > 0.0);
        Pareto { xm, alpha }
    }
}

impl Sampler for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        self.xm / (1.0 - u).powf(1.0 / self.alpha)
    }
}

/// Discrete distribution over indices `0..n` with given non-negative
/// weights (need not be normalized).
#[derive(Clone, Debug)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// # Panics
    /// If `weights` is empty, contains a negative/non-finite weight, or
    /// sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "categorical needs at least one weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be >= 0");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Categorical { cumulative }
    }

    pub fn len(&self) -> usize {
        self.cumulative.len()
    }
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draw an index.
    pub fn sample_index<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        // `new` guarantees at least one weight; 0.0 is a dead fallback.
        let total = self.cumulative.last().copied().unwrap_or(0.0);
        let x: f64 = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c <= x).min(self.len() - 1)
    }
}

/// Convenience: Bernoulli trial with probability `p` (clamped to [0,1]).
#[inline]
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p.clamp(0.0, 1.0)
}

/// Standard normal CDF Φ(x), via the complementary error function
/// (Abramowitz & Stegun 7.1.26 polynomial, |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * x.abs() / core::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erf_abs = 1.0 - poly * (-x * x / 2.0).exp();
    if x >= 0.0 {
        0.5 * (1.0 + erf_abs)
    } else {
        0.5 * (1.0 - erf_abs)
    }
}

/// Inverse standard normal CDF Φ⁻¹(p), by bisection on [`normal_cdf`]
/// (sufficient accuracy for calibration; not a hot path).
///
/// # Panics
/// If `p` is not strictly inside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1)");
    let (mut lo, mut hi) = (-9.0f64, 9.0f64);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if normal_cdf(mid) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

impl LogNormal {
    /// `E[min(X, c)]` for `X ~ LogNormal(mu, sigma)` — the mean of the
    /// winsorized distribution, in closed form:
    /// `exp(mu + s²/2)·Φ((ln c − mu − s²)/s) + c·(1 − Φ((ln c − mu)/s))`.
    pub fn capped_mean(&self, cap: f64) -> f64 {
        assert!(cap > 0.0);
        if self.sigma == 0.0 {
            return self.mu.exp().min(cap);
        }
        let lc = cap.ln();
        let body = self.mean() * normal_cdf((lc - self.mu - self.sigma * self.sigma) / self.sigma);
        let tail = cap * (1.0 - normal_cdf((lc - self.mu) / self.sigma));
        body + tail
    }

    /// Sample, winsorized at `cap`.
    pub fn sample_capped<R: Rng + ?Sized>(&self, rng: &mut R, cap: f64) -> f64 {
        self.sample(rng).min(cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::prelude::*;
    #[allow(unused_imports)]
    use rand::Rng;

    fn mean_of<S: Sampler>(s: &S, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| s.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn exp_mean_converges() {
        let d = Exp::with_mean(4.0);
        let m = mean_of(&d, 100_000, 1);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
    }

    #[test]
    fn exp_fit_recovers_rate() {
        let d = Exp::new(0.25);
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<_> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let fit = Exp::fit(&samples).unwrap();
        assert!((fit.rate - 0.25).abs() < 0.01);
        assert!(Exp::fit(&[]).is_none());
    }

    #[test]
    fn lognormal_quantile_calibration() {
        let d = LogNormal::from_median_p95(75.22, 340.69); // XID 95 persistence
        assert!((d.median() - 75.22).abs() < 1e-9);
        assert!((d.p95() - 340.69).abs() < 1e-6);
        let mut rng = StdRng::seed_from_u64(3);
        let mut samples: Vec<_> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = samples[samples.len() / 2];
        let p95 = samples[(samples.len() as f64 * 0.95) as usize];
        assert!((p50 - 75.22).abs() / 75.22 < 0.03, "p50 {p50}");
        assert!((p95 - 340.69).abs() / 340.69 < 0.05, "p95 {p95}");
    }

    #[test]
    fn lognormal_fit_recovers_parameters() {
        let d = LogNormal::new(1.5, 0.7);
        let mut rng = StdRng::seed_from_u64(4);
        let samples: Vec<_> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        let fit = LogNormal::fit(&samples).unwrap();
        assert!((fit.mu - 1.5).abs() < 0.02);
        assert!((fit.sigma - 0.7).abs() < 0.02);
        assert!(LogNormal::fit(&[1.0, -2.0]).is_none());
    }

    #[test]
    fn weibull_median_matches_closed_form() {
        let d = Weibull::new(0.7, 100.0);
        let mut rng = StdRng::seed_from_u64(5);
        let mut samples: Vec<_> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = samples[samples.len() / 2];
        assert!((p50 - d.median()).abs() / d.median() < 0.03);
    }

    #[test]
    fn pareto_respects_minimum() {
        let d = Pareto::new(10.0, 1.5);
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 10.0);
        }
    }

    #[test]
    fn categorical_matches_weights() {
        let c = Categorical::new(&[1.0, 0.0, 3.0]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 3];
        for _ in 0..40_000 {
            counts[c.sample_index(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let frac0 = counts[0] as f64 / 40_000.0;
        assert!((frac0 - 0.25).abs() < 0.02, "frac0 {frac0}");
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.6448536) - 0.95).abs() < 1e-5);
        assert!((normal_cdf(-1.6448536) - 0.05).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.9999999);
        assert!(normal_cdf(-8.0) < 1e-7);
    }

    #[test]
    fn capped_mean_matches_monte_carlo() {
        let d = LogNormal::new(0.5, 1.8);
        let cap = 20.0;
        let analytic = d.capped_mean(cap);
        let mut rng = StdRng::seed_from_u64(9);
        let mc: f64 =
            (0..300_000).map(|_| d.sample_capped(&mut rng, cap)).sum::<f64>() / 300_000.0;
        assert!(
            (analytic - mc).abs() / mc < 0.02,
            "analytic {analytic} vs MC {mc}"
        );
        // A huge cap reduces to the plain mean.
        assert!((d.capped_mean(1e12) - d.mean()).abs() / d.mean() < 1e-6);
    }

    #[test]
    fn coin_extremes() {
        let mut rng = StdRng::seed_from_u64(8);
        assert!((0..100).all(|_| coin(&mut rng, 1.1)));
        assert!((0..100).all(|_| !coin(&mut rng, -0.5)));
    }

    proptest! {
        /// Samplers always produce positive, finite values.
        #[test]
        fn samples_positive_finite(seed in 0u64..1_000,
                                   mean in 0.001f64..1e6,
                                   sigma in 0.0f64..3.0) {
            let mut rng = StdRng::seed_from_u64(seed);
            let e = Exp::with_mean(mean).sample(&mut rng);
            prop_assert!(e >= 0.0 && e.is_finite());
            let l = LogNormal::new(mean.ln(), sigma).sample(&mut rng);
            prop_assert!(l > 0.0 && l.is_finite());
            let w = Weibull::new(0.5 + sigma, mean).sample(&mut rng);
            prop_assert!(w >= 0.0 && w.is_finite());
        }

        /// Categorical indices are always in range.
        #[test]
        fn categorical_in_range(weights in prop::collection::vec(0.0f64..10.0, 1..20),
                                seed in 0u64..100) {
            prop_assume!(weights.iter().sum::<f64>() > 0.0);
            let c = Categorical::new(&weights);
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..50 {
                prop_assert!(c.sample_index(&mut rng) < weights.len());
            }
        }
    }
}
