//! The workspace's only sanctioned wall-clock callsite.
//!
//! The repo-wide determinism invariant forbids `Instant::now()` /
//! `SystemTime::now()` in library code: results must be a function of
//! seeds and inputs alone. Observability is the one legitimate consumer
//! of wall time — a span duration describes the *run*, never the
//! *results* — so dr-lint's determinism pass carries a scoped exemption
//! for exactly this file (`crates/obs/src/clock.rs`) and nothing else.
//! Every timing read in the workspace must route through [`Stopwatch`];
//! the companion `obs-isolation` pass flags `Stopwatch` / `clock::now`
//! uses outside the observability and benchmarking layers so measured
//! time can never flow back into analysis results.

pub use std::time::Instant;

/// Read the wall clock. Library code outside `dr-obs`/`dr-bench` must
/// not call this; see the module docs.
pub fn now() -> Instant {
    Instant::now()
}

/// A started timer; read it with [`Stopwatch::elapsed_s`].
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Stopwatch { start: now() }
    }

    /// Seconds since [`Stopwatch::start`].
    pub fn elapsed_s(&self) -> f64 {
        now().duration_since(self.start).as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let w = Stopwatch::start();
        let a = w.elapsed_s();
        let b = w.elapsed_s();
        assert!(a >= 0.0);
        assert!(b >= a);
    }
}
