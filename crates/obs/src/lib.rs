//! `dr-obs` — pure-std observability for the resilience pipeline.
//!
//! The paper's Fig. 4 pipeline chews through hundreds of gigabytes of
//! syslog; this crate makes that work visible without perturbing it:
//!
//! * hierarchical timed spans ([`MetricsSink::span`] → [`SpanGuard`]),
//! * per-stage atomic counters ([`MetricsSink::add`]),
//! * log-scale latency/throughput histograms (reusing
//!   `dr_stats::LogHistogram`),
//! * a registry keyed by [`Stage`] (shard → extract → coalesce → stats →
//!   propagation → job impact, plus the simulation-side campaign and
//!   schedule stages),
//! * JSON export ([`MetricsSink::export_json`]) through the same
//!   dependency-free [`json::Json`] writer the tracked `BENCH_*.json`
//!   artifacts use.
//!
//! Two invariants the rest of the workspace leans on:
//!
//! 1. **Read-only w.r.t. results.** Instrumented code only ever writes
//!    into a sink; nothing it computes can depend on a recorded value.
//!    `StudyResults` is bit-identical whether a sink is disabled,
//!    recording, or absent. The `obs-isolation` dr-lint pass flags any
//!    read-back (`export_json`, `Stopwatch`, `clock::now`) outside the
//!    observability/benchmark/CLI layers.
//! 2. **Scoped wall clock.** The determinism pass forbids
//!    `Instant::now()` in library code; the single exemption is
//!    [`clock`], and every timer here routes through it.
//!
//! Overhead discipline: hooks fire at chunk/stage granularity — never
//! per line — and a disabled sink short-circuits on one `Option` check,
//! keeping steady-state overhead on the tracked bench workload under
//! 5 % (recorded in `BENCH_obs.json`).

pub mod clock;
pub mod json;
mod sink;

pub use sink::{Counter, MetricsSink, SpanGuard, Stage};
