//! The metrics registry and its cheap cloneable handle, [`MetricsSink`].
//!
//! A sink is either *disabled* (the default — every call is a no-op and
//! costs one branch on a `None`) or *recording* into a shared registry:
//! per-stage atomic counters, hierarchical timed spans aggregated by
//! path, and log-scale value histograms. Instrumented code holds a sink
//! by value or reference and never reads it back; exporting is the
//! caller's job via [`MetricsSink::export_json`]. That one-way flow is
//! what keeps results bit-identical with metrics on or off, and the
//! `obs-isolation` lint pass enforces it by flagging `export_json` in
//! analysis code.

use crate::clock::Stopwatch;
use crate::json::Json;
use dr_stats::LogHistogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A pipeline stage; the top-level key of the metrics registry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Chunk planning over the raw per-node logs.
    Shard,
    /// Parallel Stage I text extraction.
    Extract,
    /// Episode coalescing (Algorithm 1).
    Coalesce,
    /// Table 1 / MTBE / lost-hours statistics.
    Stats,
    /// Error-propagation analysis.
    Propagation,
    /// Job-impact attribution (Tables 3/6).
    JobImpact,
    /// Fault-injection campaign simulation (`dr-faults`).
    Campaign,
    /// Synthetic Slurm job scheduling (`dr-slurm`).
    Schedule,
}

impl Stage {
    pub const ALL: [Stage; 8] = [
        Stage::Shard,
        Stage::Extract,
        Stage::Coalesce,
        Stage::Stats,
        Stage::Propagation,
        Stage::JobImpact,
        Stage::Campaign,
        Stage::Schedule,
    ];

    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Shard => "shard",
            Stage::Extract => "extract",
            Stage::Coalesce => "coalesce",
            Stage::Stats => "stats",
            Stage::Propagation => "propagation",
            Stage::JobImpact => "job_impact",
            Stage::Campaign => "campaign",
            Stage::Schedule => "schedule",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// A monotone counter within a stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Counter {
    /// Input bytes processed.
    Bytes,
    /// Input lines scanned.
    Lines,
    /// Lines carrying an `NVRM: Xid` report.
    XidLines,
    /// Lines that survived the literal needle prefilter and reached the
    /// structured parser. Hit rate = `prefilter_hits / lines`; the gap
    /// `prefilter_hits - xid_lines` counts near-miss lines the parser
    /// then rejected.
    PrefilterHits,
    /// Structured error records produced.
    Records,
    /// Coalesced error episodes.
    Episodes,
    /// Work chunks planned or executed.
    Chunks,
    /// Simulation events processed.
    Events,
    /// Jobs scheduled or attributed.
    Jobs,
}

impl Counter {
    pub const ALL: [Counter; 9] = [
        Counter::Bytes,
        Counter::Lines,
        Counter::XidLines,
        Counter::PrefilterHits,
        Counter::Records,
        Counter::Episodes,
        Counter::Chunks,
        Counter::Events,
        Counter::Jobs,
    ];

    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Bytes => "bytes",
            Counter::Lines => "lines",
            Counter::XidLines => "xid_lines",
            Counter::PrefilterHits => "prefilter_hits",
            Counter::Records => "records",
            Counter::Episodes => "episodes",
            Counter::Chunks => "chunks",
            Counter::Events => "events",
            Counter::Jobs => "jobs",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

/// Aggregate of every completed span sharing one `(stage, path)` key.
#[derive(Clone, Debug)]
struct SpanAgg {
    count: u64,
    total_s: f64,
    min_s: f64,
    max_s: f64,
    /// Duration distribution, 1 µs … 10 ks at 2 bins/decade.
    hist: LogHistogram,
}

impl SpanAgg {
    fn new() -> Self {
        SpanAgg {
            count: 0,
            total_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
            hist: LogHistogram::decades(1e-6, 1e4, 2),
        }
    }

    fn record(&mut self, secs: f64) {
        self.count += 1;
        self.total_s += secs;
        self.min_s = self.min_s.min(secs);
        self.max_s = self.max_s.max(secs);
        self.hist.push(secs);
    }
}

/// The shared store behind a recording sink. Counters are lock-free
/// atomics; spans and histograms sit behind a mutex because they are
/// touched at chunk/stage granularity, never per line.
struct Registry {
    counters: [[AtomicU64; Counter::ALL.len()]; Stage::ALL.len()],
    spans: Mutex<BTreeMap<(Stage, String), SpanAgg>>,
    hists: Mutex<BTreeMap<(Stage, String), LogHistogram>>,
    /// High-water marks (e.g. peak resident bytes of a streaming wave):
    /// `gauge_max` keeps the maximum ever reported per `(stage, name)`.
    gauges: Mutex<BTreeMap<(Stage, String), f64>>,
    /// Point-in-time readings (e.g. a live session's windowed MTBE):
    /// `gauge_set` keeps the latest value reported per `(stage, name)`.
    gauges_last: Mutex<BTreeMap<(Stage, String), f64>>,
}

impl Registry {
    fn new() -> Self {
        Registry {
            counters: std::array::from_fn(|_| std::array::from_fn(|_| AtomicU64::new(0))),
            spans: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            gauges_last: Mutex::new(BTreeMap::new()),
        }
    }
}

/// Recover the guard even if a panicking holder poisoned the mutex: the
/// aggregates are monotone counters, safe to read in any interleaving.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A handle to the metrics registry: `Default`/[`MetricsSink::disabled`]
/// is a no-op sink, [`MetricsSink::recording`] allocates a registry.
/// Clones share the same registry, so a sink can be fanned out across
/// worker threads.
#[derive(Clone, Default)]
pub struct MetricsSink {
    reg: Option<Arc<Registry>>,
}

impl std::fmt::Debug for MetricsSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_enabled() {
            "MetricsSink(recording)"
        } else {
            "MetricsSink(disabled)"
        })
    }
}

impl MetricsSink {
    /// A sink that records nothing; every operation is a cheap no-op.
    pub fn disabled() -> Self {
        MetricsSink::default()
    }

    /// A sink that records into a fresh registry shared by all clones.
    pub fn recording() -> Self {
        MetricsSink {
            reg: Some(Arc::new(Registry::new())),
        }
    }

    /// True when this sink is attached to a registry.
    pub fn is_enabled(&self) -> bool {
        self.reg.is_some()
    }

    /// Add `n` to a stage counter. Call at chunk granularity, not per
    /// line — the atomic add is cheap but not free.
    pub fn add(&self, stage: Stage, counter: Counter, n: u64) {
        if let Some(reg) = &self.reg {
            let cell = reg
                .counters
                .get(stage.idx())
                .and_then(|row| row.get(counter.idx()));
            if let Some(c) = cell {
                c.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Record one observation in a named log-scale histogram (1e-3 …
    /// 1e9 at 2 bins/decade; out-of-range values land in the under- or
    /// overflow bucket). Used for throughput samples like per-chunk MB/s.
    pub fn observe(&self, stage: Stage, name: &str, value: f64) {
        if let Some(reg) = &self.reg {
            let mut hists = lock(&reg.hists);
            hists
                .entry((stage, name.to_string()))
                .or_insert_with(|| LogHistogram::decades(1e-3, 1e9, 2))
                .push(value);
        }
    }

    /// Report a high-water mark: the registry keeps the *maximum* value
    /// ever reported under `(stage, name)`. Used for peak-resident-bytes
    /// style measurements where the interesting number is the worst
    /// moment, not a sum or a distribution.
    pub fn gauge_max(&self, stage: Stage, name: &str, value: f64) {
        if let Some(reg) = &self.reg {
            let mut gauges = lock(&reg.gauges);
            let slot = gauges
                .entry((stage, name.to_string()))
                .or_insert(f64::NEG_INFINITY);
            if value > *slot {
                *slot = value;
            }
        }
    }

    /// Report a point-in-time reading: the registry keeps the *latest*
    /// value reported under `(stage, name)`. This is what a periodic
    /// snapshot wants (e.g. `gpures watch` re-exporting its windowed
    /// MTBE every interval) — each export reflects the current state,
    /// not the maximum or a distribution. Use a distinct name space from
    /// [`MetricsSink::gauge_max`] keys; both merge into the exported
    /// `gauges` object.
    pub fn gauge_set(&self, stage: Stage, name: &str, value: f64) {
        if let Some(reg) = &self.reg {
            let mut gauges = lock(&reg.gauges_last);
            gauges.insert((stage, name.to_string()), value);
        }
    }

    /// Open a timed span; it records itself into the registry on drop.
    /// On a disabled sink the guard never reads the clock.
    pub fn span(&self, stage: Stage, name: &str) -> SpanGuard<'_> {
        SpanGuard {
            sink: self,
            stage,
            path: if self.is_enabled() { name.to_string() } else { String::new() },
            watch: self.is_enabled().then(Stopwatch::start),
            rate: None,
        }
    }

    fn record_span(&self, stage: Stage, path: &str, secs: f64) {
        if let Some(reg) = &self.reg {
            let mut spans = lock(&reg.spans);
            spans
                .entry((stage, path.to_string()))
                .or_insert_with(SpanAgg::new)
                .record(secs);
        }
    }

    /// Export everything recorded so far as a `gpures-metrics/v1`
    /// document; `None` when the sink is disabled. Analysis code must
    /// never call this — the `obs-isolation` lint pass enforces that.
    pub fn export_json(&self) -> Option<Json> {
        let reg = self.reg.as_ref()?;
        let spans = lock(&reg.spans).clone();
        let hists = lock(&reg.hists).clone();
        // Merge both gauge families into one exported object; last-value
        // readings override a high-water mark under the same name (they
        // should use disjoint names anyway).
        let mut gauges = lock(&reg.gauges).clone();
        for ((stage, name), v) in lock(&reg.gauges_last).iter() {
            gauges.insert((*stage, name.clone()), *v);
        }

        let mut stages = Vec::new();
        for stage in Stage::ALL {
            let counters: Vec<(Counter, u64)> = Counter::ALL
                .iter()
                .map(|&c| (c, reg.counters[stage.idx()][c.idx()].load(Ordering::Relaxed)))
                .filter(|&(_, v)| v > 0)
                .collect();
            let stage_spans: Vec<(&String, &SpanAgg)> = spans
                .iter()
                .filter(|((s, _), _)| *s == stage)
                .map(|((_, p), agg)| (p, agg))
                .collect();
            let stage_hists: Vec<(&String, &LogHistogram)> = hists
                .iter()
                .filter(|((s, _), _)| *s == stage)
                .map(|((_, n), h)| (n, h))
                .collect();
            let stage_gauges: Vec<(&String, f64)> = gauges
                .iter()
                .filter(|((s, _), _)| *s == stage)
                .map(|((_, n), &v)| (n, v))
                .collect();
            if counters.is_empty()
                && stage_spans.is_empty()
                && stage_hists.is_empty()
                && stage_gauges.is_empty()
            {
                continue;
            }

            // Stage wall time: the span literally named "total" when the
            // instrumentation provides one, else the sum of root spans.
            let wall_s = stage_spans
                .iter()
                .find(|(p, _)| p.as_str() == "total")
                .map(|(_, agg)| agg.total_s)
                .unwrap_or_else(|| {
                    stage_spans
                        .iter()
                        .filter(|(p, _)| !p.contains('/'))
                        .map(|(_, agg)| agg.total_s)
                        .sum()
                });

            let mut fields = vec![
                ("stage", Json::Str(stage.name().to_string())),
                ("wall_s", Json::Num(wall_s)),
            ];
            if !counters.is_empty() {
                fields.push((
                    "counters",
                    Json::Obj(
                        counters
                            .iter()
                            .map(|&(c, v)| (c.name().to_string(), Json::Num(v as f64)))
                            .collect(),
                    ),
                ));
                if wall_s > 0.0 {
                    let rates: Vec<(String, Json)> = counters
                        .iter()
                        .filter(|(c, _)| {
                            matches!(c, Counter::Bytes | Counter::Lines | Counter::Records)
                        })
                        .map(|&(c, v)| {
                            (format!("{}_per_s", c.name()), Json::Num(v as f64 / wall_s))
                        })
                        .collect();
                    if !rates.is_empty() {
                        fields.push(("rates", Json::Obj(rates)));
                    }
                }
            }
            if !stage_gauges.is_empty() {
                fields.push((
                    "gauges",
                    Json::Obj(
                        stage_gauges
                            .iter()
                            .map(|&(n, v)| (n.clone(), Json::Num(v)))
                            .collect(),
                    ),
                ));
            }
            if !stage_spans.is_empty() {
                fields.push((
                    "spans",
                    Json::Arr(stage_spans.iter().map(|(p, agg)| span_json(p, agg)).collect()),
                ));
            }
            if !stage_hists.is_empty() {
                fields.push((
                    "histograms",
                    Json::Arr(
                        stage_hists
                            .iter()
                            .map(|(n, h)| {
                                Json::obj(vec![
                                    ("name", Json::Str((*n).clone())),
                                    ("hist", hist_json(h)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
            stages.push(Json::obj(fields));
        }

        Some(Json::obj(vec![
            ("schema", Json::Str("gpures-metrics/v1".to_string())),
            ("stages", Json::Arr(stages)),
        ]))
    }
}

fn span_json(path: &str, agg: &SpanAgg) -> Json {
    Json::obj(vec![
        ("name", Json::Str(path.to_string())),
        ("count", Json::Num(agg.count as f64)),
        ("total_s", Json::Num(agg.total_s)),
        ("min_s", Json::Num(if agg.count == 0 { 0.0 } else { agg.min_s })),
        ("max_s", Json::Num(agg.max_s)),
        ("hist", hist_json(&agg.hist)),
    ])
}

/// Sparse histogram rendering: only non-empty bins are emitted.
fn hist_json(h: &LogHistogram) -> Json {
    let bins: Vec<Json> = h
        .iter_bins()
        .filter(|&(_, _, n)| n > 0)
        .map(|(lo, hi, n)| {
            Json::obj(vec![
                ("lo", Json::Num(lo)),
                ("hi", Json::Num(hi)),
                ("n", Json::Num(n as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("count", Json::Num(h.count() as f64)),
        ("underflow", Json::Num(h.underflow() as f64)),
        ("overflow", Json::Num(h.overflow() as f64)),
        ("bins", Json::Arr(bins)),
    ])
}

/// RAII span: times from creation to drop and records the duration
/// under its slash-separated path. Children extend the path, giving the
/// hierarchy (`total/merge`, `total/merge/heap`, …).
pub struct SpanGuard<'s> {
    sink: &'s MetricsSink,
    stage: Stage,
    path: String,
    watch: Option<Stopwatch>,
    rate: Option<(String, f64)>,
}

impl<'s> SpanGuard<'s> {
    /// Open a child span under this span's path.
    pub fn child(&self, name: &str) -> SpanGuard<'s> {
        SpanGuard {
            sink: self.sink,
            stage: self.stage,
            path: if self.watch.is_some() {
                format!("{}/{}", self.path, name)
            } else {
                String::new()
            },
            watch: self.watch.is_some().then(Stopwatch::start),
            rate: None,
        }
    }

    /// Attach a work volume to the span: on drop, besides the duration,
    /// the guard records `units / elapsed_seconds` into the named
    /// histogram of the same stage. This is how instrumented code gets a
    /// throughput sample (e.g. per-chunk MB/s) without ever reading the
    /// clock itself.
    pub fn rate(&mut self, hist: &str, units: f64) {
        if self.watch.is_some() {
            self.rate = Some((hist.to_string(), units));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(watch) = &self.watch {
            let secs = watch.elapsed_s();
            self.sink.record_span(self.stage, &self.path, secs);
            if let Some((hist, units)) = self.rate.take() {
                if secs > 0.0 {
                    self.sink.observe(self.stage, &hist, units / secs);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = MetricsSink::disabled();
        assert!(!sink.is_enabled());
        sink.add(Stage::Extract, Counter::Lines, 10);
        sink.observe(Stage::Extract, "mb_per_s", 5.0);
        {
            let span = sink.span(Stage::Extract, "total");
            let _child = span.child("inner");
        }
        assert!(sink.export_json().is_none());
    }

    #[test]
    fn counters_accumulate_across_clones() {
        let sink = MetricsSink::recording();
        let clone = sink.clone();
        sink.add(Stage::Extract, Counter::Lines, 10);
        clone.add(Stage::Extract, Counter::Lines, 32);
        let doc = sink.export_json().expect("recording sink exports");
        let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
        assert_eq!(stages.len(), 1);
        let counters = stages[0].get("counters").expect("counters");
        assert_eq!(counters.get("lines").and_then(Json::as_u64), Some(42));
    }

    #[test]
    fn spans_aggregate_and_children_extend_paths() {
        let sink = MetricsSink::recording();
        {
            let total = sink.span(Stage::Coalesce, "total");
            let _merge = total.child("merge");
        }
        {
            let _total = sink.span(Stage::Coalesce, "total");
        }
        let doc = sink.export_json().expect("exports");
        let stages = doc.get("stages").and_then(Json::as_arr).expect("stages");
        let spans = stages[0].get("spans").and_then(Json::as_arr).expect("spans");
        let names: Vec<&str> = spans
            .iter()
            .filter_map(|s| s.get("name").and_then(Json::as_str))
            .collect();
        assert_eq!(names, ["total", "total/merge"]);
        let total = &spans[0];
        assert_eq!(total.get("count").and_then(Json::as_u64), Some(2));
        let total_s = total.get("total_s").and_then(Json::as_f64).expect("total_s");
        let max_s = total.get("max_s").and_then(Json::as_f64).expect("max_s");
        assert!(total_s >= max_s);
        // Stage wall time comes from the "total" span, not the sum.
        let wall = stages[0].get("wall_s").and_then(Json::as_f64).expect("wall");
        assert!((wall - total_s).abs() < 1e-12);
    }

    #[test]
    fn rates_derive_from_counters_and_wall_time() {
        let sink = MetricsSink::recording();
        {
            let _t = sink.span(Stage::Extract, "total");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        sink.add(Stage::Extract, Counter::Bytes, 1_000_000);
        sink.add(Stage::Extract, Counter::Lines, 10_000);
        sink.add(Stage::Extract, Counter::Records, 7);
        sink.add(Stage::Extract, Counter::Chunks, 3);
        let doc = sink.export_json().expect("exports");
        let stage = &doc.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let rates = stage.get("rates").expect("rates");
        for key in ["bytes_per_s", "lines_per_s", "records_per_s"] {
            assert!(rates.get(key).and_then(Json::as_f64).expect(key) > 0.0);
        }
        // Chunks is a counter but not a rate.
        assert!(rates.get("chunks_per_s").is_none());
    }

    #[test]
    fn observed_histograms_export_sparse_bins() {
        let sink = MetricsSink::recording();
        for v in [0.5, 5.0, 5.5, 50.0] {
            sink.observe(Stage::Extract, "chunk_mb_per_s", v);
        }
        let doc = sink.export_json().expect("exports");
        let stage = &doc.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let hists = stage.get("histograms").and_then(Json::as_arr).expect("hists");
        assert_eq!(hists.len(), 1);
        assert_eq!(
            hists[0].get("name").and_then(Json::as_str),
            Some("chunk_mb_per_s")
        );
        let h = hists[0].get("hist").expect("hist");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(4));
        let bins = h.get("bins").and_then(Json::as_arr).expect("bins");
        let total: u64 = bins
            .iter()
            .map(|b| b.get("n").and_then(Json::as_u64).unwrap_or(0))
            .sum();
        assert_eq!(total, 4, "all in-range observations appear in bins");
        assert!(bins.iter().all(|b| b.get("n").and_then(Json::as_u64) != Some(0)));
    }

    #[test]
    fn span_rate_records_a_throughput_histogram() {
        let sink = MetricsSink::recording();
        {
            let mut span = sink.span(Stage::Extract, "chunk");
            span.rate("chunk_mb_per_s", 8.0);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let doc = sink.export_json().expect("exports");
        let stage = &doc.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let hists = stage.get("histograms").and_then(Json::as_arr).expect("hists");
        assert_eq!(
            hists[0].get("name").and_then(Json::as_str),
            Some("chunk_mb_per_s")
        );
        let h = hists[0].get("hist").expect("hist");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(1));
    }

    #[test]
    fn gauge_max_keeps_the_high_water_mark() {
        let sink = MetricsSink::recording();
        sink.gauge_max(Stage::Extract, "peak_resident_bytes", 1_024.0);
        sink.gauge_max(Stage::Extract, "peak_resident_bytes", 4_096.0);
        sink.gauge_max(Stage::Extract, "peak_resident_bytes", 2_048.0);
        let doc = sink.export_json().expect("exports");
        let stage = &doc.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let gauges = stage.get("gauges").expect("gauges");
        assert_eq!(
            gauges.get("peak_resident_bytes").and_then(Json::as_f64),
            Some(4_096.0)
        );
    }

    #[test]
    fn gauges_on_a_disabled_sink_are_noops() {
        let sink = MetricsSink::disabled();
        sink.gauge_max(Stage::Extract, "peak_resident_bytes", 10.0);
        sink.gauge_set(Stage::Stats, "windowed_mtbe_h", 10.0);
        assert!(sink.export_json().is_none());
    }

    #[test]
    fn gauge_set_keeps_the_latest_value() {
        let sink = MetricsSink::recording();
        sink.gauge_set(Stage::Stats, "windowed_mtbe_h", 120.0);
        sink.gauge_set(Stage::Stats, "windowed_mtbe_h", 80.0);
        sink.gauge_set(Stage::Stats, "windowed_mtbe_h", 95.5);
        let doc = sink.export_json().expect("exports");
        let stage = &doc.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let gauges = stage.get("gauges").expect("gauges");
        assert_eq!(
            gauges.get("windowed_mtbe_h").and_then(Json::as_f64),
            Some(95.5)
        );
    }

    #[test]
    fn gauge_families_merge_into_one_exported_object() {
        let sink = MetricsSink::recording();
        sink.gauge_max(Stage::Coalesce, "peak_open_episodes", 17.0);
        sink.gauge_set(Stage::Coalesce, "open_episodes", 3.0);
        let doc = sink.export_json().expect("exports");
        let stage = &doc.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let gauges = stage.get("gauges").expect("gauges");
        assert_eq!(
            gauges.get("peak_open_episodes").and_then(Json::as_f64),
            Some(17.0)
        );
        assert_eq!(gauges.get("open_episodes").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn empty_recording_sink_exports_no_stages() {
        let doc = MetricsSink::recording().export_json().expect("exports");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gpures-metrics/v1")
        );
        assert_eq!(doc.get("stages").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    }

    #[test]
    fn stage_and_counter_names_are_stable() {
        let stage_names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            stage_names,
            ["shard", "extract", "coalesce", "stats", "propagation", "job_impact", "campaign", "schedule"]
        );
        let counter_names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(
            counter_names,
            [
                "bytes",
                "lines",
                "xid_lines",
                "prefilter_hits",
                "records",
                "episodes",
                "chunks",
                "events",
                "jobs"
            ]
        );
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = MetricsSink::recording();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = sink.clone();
                scope.spawn(move || {
                    for _ in 0..100 {
                        s.add(Stage::Extract, Counter::Records, 1);
                    }
                    let _span = s.span(Stage::Extract, "chunk");
                });
            }
        });
        let doc = sink.export_json().expect("exports");
        let stage = &doc.get("stages").and_then(Json::as_arr).expect("stages")[0];
        let counters = stage.get("counters").expect("counters");
        assert_eq!(counters.get("records").and_then(Json::as_u64), Some(400));
    }
}
