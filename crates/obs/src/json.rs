//! A minimal JSON value: enough to emit and re-read the tracked
//! `BENCH_*.json` artifacts and `--metrics` exports without an external
//! dependency. Lives here (the bottom of the observability stack) so both
//! `dr-bench` and `dr-obs` can use it; `dr-bench` re-exports it, keeping
//! the historical `dr_bench::json::Json` path valid.
//!
//! Emission preserves insertion order (objects are association lists), so
//! the rendered artifact is byte-deterministic for a fixed set of
//! measurements. The parser is a recursive-descent reader of the same
//! subset the emitter produces — it exists so the smoke test and the
//! `bench` subcommand can verify a written artifact round-trips.

use std::fmt::Write as _;

/// A JSON value. Objects keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    pad(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn eat(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    let end = *pos + lit.len();
    if bytes.get(*pos..end) == Some(lit.as_bytes()) {
        *pos = end;
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => eat(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => eat(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => eat(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                eat(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b) if b.is_ascii_digit() || *b == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected byte at {pos}", pos = *pos)),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected `\"` at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .and_then(char::from_u32)
                            .ok_or_else(|| format!("bad \\u escape at byte {p}", p = *pos))?;
                        out.push(hex);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume a whole UTF-8 scalar so multi-byte chars survive.
                let start = *pos;
                *pos += 1;
                while bytes.get(*pos).is_some_and(|b| b & 0xC0 == 0x80) {
                    *pos += 1;
                }
                match std::str::from_utf8(&bytes[start..*pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(format!("invalid UTF-8 at byte {start}")),
                }
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_deterministically_with_ordered_keys() {
        let v = Json::obj(vec![
            ("schema", Json::Str("demo/v1".into())),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(2.5)),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null])),
            ("empty", Json::Obj(Vec::new())),
        ]);
        let text = v.render();
        assert_eq!(
            text,
            "{\n  \"schema\": \"demo/v1\",\n  \"count\": 3,\n  \"ratio\": 2.5,\n  \
             \"items\": [\n    1,\n    true,\n    null\n  ],\n  \"empty\": {}\n}\n"
        );
    }

    #[test]
    fn round_trips_through_parse() {
        let v = Json::obj(vec![
            ("name", Json::Str("dense \"xid\" mix\n".into())),
            ("lines_per_s", Json::Num(123456.789)),
            ("nested", Json::obj(vec![("workers", Json::Num(8.0))])),
            ("arr", Json::Arr(vec![Json::Num(-1.0), Json::Num(1e-3)])),
        ]);
        let parsed = Json::parse(&v.render()).expect("round-trip parses");
        assert_eq!(parsed, v);
    }

    #[test]
    fn accessors_pull_fields() {
        let v = Json::parse("{\"a\": 2, \"b\": \"x\", \"c\": [1, 2]}").expect("parses");
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(2.5).as_u64(), None, "fractional is not a u64");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "{\"a\" 1}", "[1,]", "tru", "\"open", "{} extra", "[1 2]"] {
            assert!(Json::parse(bad).is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn unicode_and_escapes_survive() {
        let parsed = Json::parse("\"caf\\u00e9 — na\\u00efve\"").expect("parses");
        assert_eq!(parsed, Json::Str("café — naïve".to_string()));
        let direct = Json::parse("\"café\"").expect("parses");
        assert_eq!(direct, Json::Str("café".to_string()));
    }
}
