//! The paper-vs-measured experiment registry.
//!
//! Every reproduced quantity is recorded as an [`Expectation`]: experiment
//! id (table/figure), metric name, the paper's value, our measured value,
//! and a relative tolerance. `delta_study` prints the verdicts and
//! `EXPERIMENTS.md` is generated from the same data, so the claimed
//! reproduction status is always the code's actual output.

use std::fmt;

/// Did the measured value land inside the tolerance band?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// |measured − paper| / |paper| ≤ tolerance.
    Match,
    /// Outside tolerance but same order of magnitude / direction.
    Close,
    /// Off.
    Mismatch,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Match => "MATCH",
            Verdict::Close => "close",
            Verdict::Mismatch => "MISMATCH",
        })
    }
}

/// One compared quantity.
#[derive(Clone, Debug)]
pub struct Expectation {
    /// Experiment id: "T1", "F5", "S5.4", ...
    pub experiment: String,
    pub metric: String,
    pub paper: f64,
    pub measured: f64,
    /// Relative tolerance for a MATCH verdict.
    pub tolerance: f64,
}

impl Expectation {
    pub fn new(
        experiment: &str,
        metric: &str,
        paper: f64,
        measured: f64,
        tolerance: f64,
    ) -> Self {
        Expectation {
            experiment: experiment.to_string(),
            metric: metric.to_string(),
            paper,
            measured,
            tolerance,
        }
    }

    /// Relative error (∞ when the paper value is 0 and measured isn't).
    pub fn relative_error(&self) -> f64 {
        if self.paper == 0.0 {
            if self.measured == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.measured - self.paper).abs() / self.paper.abs()
        }
    }

    pub fn verdict(&self) -> Verdict {
        let rel = self.relative_error();
        if rel <= self.tolerance {
            Verdict::Match
        } else if rel <= self.tolerance * 3.0 + 0.5 {
            Verdict::Close
        } else {
            Verdict::Mismatch
        }
    }
}

/// A collection of expectations with summary rendering.
#[derive(Clone, Debug, Default)]
pub struct Comparison {
    pub items: Vec<Expectation>,
}

impl Comparison {
    pub fn new() -> Self {
        Comparison::default()
    }

    /// Record one comparison.
    pub fn push(&mut self, experiment: &str, metric: &str, paper: f64, measured: f64, tol: f64) {
        self.items
            .push(Expectation::new(experiment, metric, paper, measured, tol));
    }

    pub fn matches(&self) -> usize {
        self.items
            .iter()
            .filter(|e| e.verdict() == Verdict::Match)
            .count()
    }

    pub fn mismatches(&self) -> usize {
        self.items
            .iter()
            .filter(|e| e.verdict() == Verdict::Mismatch)
            .count()
    }

    /// Render the full paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = crate::table::Table::new(vec![
            "exp", "metric", "paper", "measured", "rel.err", "verdict",
        ])
        .aligns(vec![
            crate::table::Align::Left,
            crate::table::Align::Left,
            crate::table::Align::Right,
            crate::table::Align::Right,
            crate::table::Align::Right,
            crate::table::Align::Left,
        ]);
        for e in &self.items {
            t.row(vec![
                e.experiment.clone(),
                e.metric.clone(),
                format!("{:.4}", e.paper),
                format!("{:.4}", e.measured),
                format!("{:.1}%", e.relative_error() * 100.0),
                e.verdict().to_string(),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\n{} of {} within tolerance, {} mismatched\n",
            self.matches(),
            self.items.len(),
            self.mismatches()
        ));
        s
    }

    /// Render as a Markdown table (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut s = String::from(
            "| exp | metric | paper | measured | rel. err | verdict |\n|---|---|---:|---:|---:|---|\n",
        );
        for e in &self.items {
            s.push_str(&format!(
                "| {} | {} | {:.4} | {:.4} | {:.1}% | {} |\n",
                e.experiment,
                e.metric,
                e.paper,
                e.measured,
                e.relative_error() * 100.0,
                e.verdict()
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_thresholds() {
        let m = Expectation::new("T1", "count", 100.0, 104.0, 0.05);
        assert_eq!(m.verdict(), Verdict::Match);
        let c = Expectation::new("T1", "count", 100.0, 130.0, 0.05);
        assert_eq!(c.verdict(), Verdict::Close);
        let x = Expectation::new("T1", "count", 100.0, 900.0, 0.05);
        assert_eq!(x.verdict(), Verdict::Mismatch);
    }

    #[test]
    fn zero_paper_value() {
        let ok = Expectation::new("S6", "rre count", 0.0, 0.0, 0.1);
        assert_eq!(ok.verdict(), Verdict::Match);
        let bad = Expectation::new("S6", "rre count", 0.0, 3.0, 0.1);
        assert_eq!(bad.verdict(), Verdict::Mismatch);
    }

    #[test]
    fn comparison_summary_counts() {
        let mut c = Comparison::new();
        c.push("T1", "a", 10.0, 10.1, 0.05);
        c.push("T1", "b", 10.0, 99.0, 0.05);
        assert_eq!(c.matches(), 1);
        assert_eq!(c.mismatches(), 1);
        let r = c.render();
        assert!(r.contains("MATCH"));
        assert!(r.contains("MISMATCH"));
        assert!(r.contains("1 of 2 within tolerance"));
        let md = c.render_markdown();
        assert!(md.starts_with("| exp |"));
        assert_eq!(md.lines().count(), 4);
    }
}
