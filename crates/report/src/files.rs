//! On-disk artifact formats used by the `gpures` CLI.
//!
//! * per-node syslog files `gpubNNN.log` in a log directory (the shape the
//!   real study consumed: one in-order text log per compute node);
//! * `downtime.csv` with repair intervals.
//!
//! Job-table CSV lives in `dr_slurm::csv` next to its types.

use dr_faults::DowntimeInterval;
use dr_xid::{DataError, GpuId, NodeId, PciAddr, Timestamp, Xid};
use resilience_core::source::{DirSource, LogSource};
use std::fmt::Write as _;
use std::io::{BufWriter, Write as _};
use std::path::Path;

/// Downtime CSV header.
pub const DOWNTIME_HEADER: &str = "gpu,start_us,end_us,cause_xid";

/// Serialize downtime intervals.
pub fn downtime_to_csv(intervals: &[DowntimeInterval]) -> String {
    let mut out = String::from(DOWNTIME_HEADER);
    out.push('\n');
    for d in intervals {
        let _ = writeln!(
            out,
            "{}/{},{},{},{}",
            d.gpu.node.0,
            d.gpu.pci,
            d.start.as_micros(),
            d.end.as_micros(),
            d.cause.code()
        );
    }
    out
}

/// Parse downtime intervals.
pub fn downtime_from_csv(text: &str) -> Result<Vec<DowntimeInterval>, DataError> {
    let err = |line: usize, m: &str| DataError::Csv {
        artifact: "downtime",
        line,
        message: m.to_string(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == DOWNTIME_HEADER => {}
        _ => return Err(err(1, "missing or wrong header")),
    }
    let mut out = Vec::new();
    for (idx, raw) in lines {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let e = |m: &str| err(idx + 1, m);
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 4 {
            return Err(e("expected 4 fields"));
        }
        let (node, pci) = fields[0].split_once('/').ok_or_else(|| e("bad gpu"))?;
        let node: u32 = node.parse().map_err(|_| e("bad node"))?;
        let pci: PciAddr = pci.parse().map_err(|_| e("bad pci"))?;
        let start: u64 = fields[1].parse().map_err(|_| e("bad start"))?;
        let end: u64 = fields[2].parse().map_err(|_| e("bad end"))?;
        if end < start {
            return Err(e("end before start"));
        }
        let code: u16 = fields[3].parse().map_err(|_| e("bad xid"))?;
        let cause = Xid::from_code(code).ok_or_else(|| e("unknown xid"))?;
        out.push(DowntimeInterval {
            gpu: GpuId::new(NodeId(node), pci),
            start: Timestamp::from_micros(start),
            end: Timestamp::from_micros(end),
            cause,
        });
    }
    Ok(out)
}

fn io_err(path: &Path, e: std::io::Error) -> DataError {
    DataError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// What a streamed log-directory write produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LogWriteSummary {
    /// Log files created (one per source node, including empty logs).
    pub files: usize,
    /// Total lines written.
    pub lines: u64,
    /// Total bytes written (lines plus newlines).
    pub bytes: u64,
}

/// Pull target for the streaming writer: large enough to amortize write
/// syscalls, small enough that peak resident text stays negligible.
const WRITE_CHUNK_BYTES: u64 = 256 * 1024;

/// Write per-node log files (`gpubNNN.log`) into `dir`.
pub fn write_node_logs(dir: &Path, logs: &[(NodeId, Vec<String>)]) -> Result<(), DataError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    for (node, lines) in logs {
        let path = dir.join(format!("{}.log", node.hostname()));
        let mut body = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for l in lines {
            body.push_str(l);
            body.push('\n');
        }
        std::fs::write(&path, body).map_err(|e| io_err(&path, e))?;
    }
    Ok(())
}

/// Stream a [`LogSource`] into per-node log files without materializing
/// any node's log: every node gets its file upfront (so empty logs still
/// exist on disk), then chunks are appended as the source yields them.
/// Peak resident text is one chunk.
pub fn write_node_logs_source<'s>(
    dir: &Path,
    source: &mut dyn LogSource<'s>,
) -> Result<LogWriteSummary, DataError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let paths: Vec<_> = source
        .nodes()
        .iter()
        .map(|node| dir.join(format!("{}.log", node.hostname())))
        .collect();
    for path in &paths {
        std::fs::File::create(path).map_err(|e| io_err(path, e))?;
    }
    let mut summary = LogWriteSummary {
        files: paths.len(),
        ..LogWriteSummary::default()
    };
    // Chunks arrive node-major, so one open writer suffices; reopen (in
    // append mode — the file already exists) only on node change.
    let mut open: Option<(usize, BufWriter<std::fs::File>)> = None;
    while let Some(chunk) = source.next_chunk(WRITE_CHUNK_BYTES)? {
        let path = &paths[chunk.node];
        let writer = match &mut open {
            Some((node, w)) if *node == chunk.node => w,
            _ => {
                if let Some((prev, mut w)) = open.take() {
                    w.flush().map_err(|e| io_err(&paths[prev], e))?;
                }
                let file = std::fs::OpenOptions::new()
                    .append(true)
                    .open(path)
                    .map_err(|e| io_err(path, e))?;
                &mut open.insert((chunk.node, BufWriter::new(file))).1
            }
        };
        for line in chunk.lines.iter() {
            writer.write_all(line.as_bytes()).map_err(|e| io_err(path, e))?;
            writer.write_all(b"\n").map_err(|e| io_err(path, e))?;
        }
        summary.lines += chunk.lines.len() as u64;
        summary.bytes += chunk.bytes;
    }
    if let Some((node, mut w)) = open {
        w.flush().map_err(|e| io_err(&paths[node], e))?;
    }
    Ok(summary)
}

/// Read every `*.log` file in `dir` as one node's log, node id taken from
/// the filename (`gpubNNN.log`); files sorted for determinism. A batch
/// adapter over [`DirSource`] — callers that can should stream via the
/// source instead of materializing the corpus here.
pub fn read_node_logs(dir: &Path) -> Result<Vec<(NodeId, Vec<String>)>, DataError> {
    let mut source = DirSource::open(dir)?;
    resilience_core::source::collect_source(&mut source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::Duration;

    #[test]
    fn downtime_round_trip() {
        let intervals = vec![DowntimeInterval {
            gpu: GpuId::at_slot(NodeId(9), 1),
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(100) + Duration::from_mins(18),
            cause: Xid::GspRpcTimeout,
        }];
        let csv = downtime_to_csv(&intervals);
        let parsed = downtime_from_csv(&csv).expect("parses");
        assert_eq!(parsed, intervals);
    }

    #[test]
    fn downtime_rejects_garbage() {
        assert!(downtime_from_csv("").is_err());
        assert!(downtime_from_csv("gpu,start_us,end_us,cause_xid\n1/0000:07:00,5,1,119\n").is_err());
        assert!(downtime_from_csv("gpu,start_us,end_us,cause_xid\n1/0000:07:00,1,5,7\n").is_err());
    }

    #[test]
    fn node_logs_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("gpures-test-{}", std::process::id()));
        let logs = vec![
            (NodeId(3), vec!["line a".to_string(), "line b".to_string()]),
            (NodeId(17), vec!["only".to_string()]),
        ];
        write_node_logs(&dir, &logs).expect("write");
        let back = read_node_logs(&dir).expect("read");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back, logs);
    }

    #[test]
    fn streamed_write_matches_batch_write_including_empty_nodes() {
        use resilience_core::source::InMemorySource;
        let dir = std::env::temp_dir().join(format!("gpures-swrite-{}", std::process::id()));
        let logs = vec![
            (NodeId(3), vec!["line a".to_string(), "line b".to_string()]),
            (NodeId(4), Vec::new()),
            (NodeId(17), vec!["only".to_string()]),
        ];
        let mut src = InMemorySource::new(&logs);
        let summary = write_node_logs_source(&dir, &mut src).expect("write");
        assert_eq!(summary.files, 3, "empty nodes still get a file");
        assert_eq!(summary.lines, 3);
        let back = read_node_logs(&dir).expect("read");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back, logs, "stream-written corpus reads back identically");
    }

    #[test]
    fn read_errors_name_the_offending_path() {
        let dir = std::env::temp_dir().join(format!("gpures-noent-{}", std::process::id()));
        let err = read_node_logs(&dir).expect_err("missing dir");
        assert!(err.to_string().contains("gpures-noent"), "{err}");
    }
}
