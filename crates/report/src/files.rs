//! On-disk artifact formats used by the `gpures` CLI.
//!
//! * per-node syslog files `gpubNNN.log` in a log directory (the shape the
//!   real study consumed: one in-order text log per compute node);
//! * `downtime.csv` with repair intervals.
//!
//! Job-table CSV lives in `dr_slurm::csv` next to its types.

use dr_faults::DowntimeInterval;
use dr_xid::{DataError, GpuId, NodeId, PciAddr, Timestamp, Xid};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Downtime CSV header.
pub const DOWNTIME_HEADER: &str = "gpu,start_us,end_us,cause_xid";

/// Serialize downtime intervals.
pub fn downtime_to_csv(intervals: &[DowntimeInterval]) -> String {
    let mut out = String::from(DOWNTIME_HEADER);
    out.push('\n');
    for d in intervals {
        let _ = writeln!(
            out,
            "{}/{},{},{},{}",
            d.gpu.node.0,
            d.gpu.pci,
            d.start.as_micros(),
            d.end.as_micros(),
            d.cause.code()
        );
    }
    out
}

/// Parse downtime intervals.
pub fn downtime_from_csv(text: &str) -> Result<Vec<DowntimeInterval>, DataError> {
    let err = |line: usize, m: &str| DataError::Csv {
        artifact: "downtime",
        line,
        message: m.to_string(),
    };
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, h)) if h.trim() == DOWNTIME_HEADER => {}
        _ => return Err(err(1, "missing or wrong header")),
    }
    let mut out = Vec::new();
    for (idx, raw) in lines {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let e = |m: &str| err(idx + 1, m);
        let fields: Vec<&str> = raw.split(',').collect();
        if fields.len() != 4 {
            return Err(e("expected 4 fields"));
        }
        let (node, pci) = fields[0].split_once('/').ok_or_else(|| e("bad gpu"))?;
        let node: u32 = node.parse().map_err(|_| e("bad node"))?;
        let pci: PciAddr = pci.parse().map_err(|_| e("bad pci"))?;
        let start: u64 = fields[1].parse().map_err(|_| e("bad start"))?;
        let end: u64 = fields[2].parse().map_err(|_| e("bad end"))?;
        if end < start {
            return Err(e("end before start"));
        }
        let code: u16 = fields[3].parse().map_err(|_| e("bad xid"))?;
        let cause = Xid::from_code(code).ok_or_else(|| e("unknown xid"))?;
        out.push(DowntimeInterval {
            gpu: GpuId::new(NodeId(node), pci),
            start: Timestamp::from_micros(start),
            end: Timestamp::from_micros(end),
            cause,
        });
    }
    Ok(out)
}

/// Write per-node log files (`gpubNNN.log`) into `dir`.
pub fn write_node_logs(dir: &Path, logs: &[(NodeId, Vec<String>)]) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (node, lines) in logs {
        let path = dir.join(format!("{}.log", node.hostname()));
        let mut body = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
        for l in lines {
            body.push_str(l);
            body.push('\n');
        }
        std::fs::write(path, body)?;
    }
    Ok(())
}

/// Read every `*.log` file in `dir` as one node's log, node id taken from
/// the filename (`gpubNNN.log`); files sorted for determinism.
pub fn read_node_logs(dir: &Path) -> io::Result<Vec<(NodeId, Vec<String>)>> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "log"))
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        let id: u32 = stem
            .trim_start_matches(|c: char| c.is_ascii_alphabetic())
            .parse()
            .map_err(|_| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("cannot parse node id from {stem:?}"),
                )
            })?;
        let body = std::fs::read_to_string(&path)?;
        out.push((NodeId(id), body.lines().map(str::to_string).collect()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::Duration;

    #[test]
    fn downtime_round_trip() {
        let intervals = vec![DowntimeInterval {
            gpu: GpuId::at_slot(NodeId(9), 1),
            start: Timestamp::from_secs(100),
            end: Timestamp::from_secs(100) + Duration::from_mins(18),
            cause: Xid::GspRpcTimeout,
        }];
        let csv = downtime_to_csv(&intervals);
        let parsed = downtime_from_csv(&csv).expect("parses");
        assert_eq!(parsed, intervals);
    }

    #[test]
    fn downtime_rejects_garbage() {
        assert!(downtime_from_csv("").is_err());
        assert!(downtime_from_csv("gpu,start_us,end_us,cause_xid\n1/0000:07:00,5,1,119\n").is_err());
        assert!(downtime_from_csv("gpu,start_us,end_us,cause_xid\n1/0000:07:00,1,5,7\n").is_err());
    }

    #[test]
    fn node_logs_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("gpures-test-{}", std::process::id()));
        let logs = vec![
            (NodeId(3), vec!["line a".to_string(), "line b".to_string()]),
            (NodeId(17), vec!["only".to_string()]),
        ];
        write_node_logs(&dir, &logs).expect("write");
        let back = read_node_logs(&dir).expect("read");
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(back, logs);
    }
}
