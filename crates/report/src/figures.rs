//! ASCII chart renderers and Graphviz DOT emission.

/// Render labeled horizontal bars, scaled to `width` characters.
pub fn ascii_bars(items: &[(String, f64)], width: usize) -> String {
    let max = items.iter().map(|(_, v)| *v).fold(0.0f64, f64::max);
    let label_w = items.iter().map(|(l, _)| l.chars().count()).max().unwrap_or(0);
    let mut out = String::new();
    for (label, v) in items {
        let bar = if max > 0.0 {
            ((v / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:<label_w$} | {} {v:.2}\n",
            "#".repeat(bar)
        ));
    }
    out
}

/// Render an empirical CDF as a fixed-size ASCII plot.
pub fn ascii_cdf(points: &[(f64, f64)], rows: usize, cols: usize) -> String {
    if points.is_empty() || rows == 0 || cols == 0 {
        return String::new();
    }
    let xmin = points.first().expect("non-empty").0;
    let xmax = points.last().expect("non-empty").0.max(xmin + f64::EPSILON);
    let mut grid = vec![vec![' '; cols]; rows];
    for &(x, y) in points {
        let cx = (((x - xmin) / (xmax - xmin)) * (cols - 1) as f64).round() as usize;
        let cy = ((1.0 - y.clamp(0.0, 1.0)) * (rows - 1) as f64).round() as usize;
        grid[cy.min(rows - 1)][cx.min(cols - 1)] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let yl = 1.0 - i as f64 / (rows - 1) as f64;
        out.push_str(&format!("{yl:4.2} |"));
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("      {xmin:<12.2}{:>width$.2}\n", xmax, width = cols.saturating_sub(12)));
    out
}

/// One edge of a DOT digraph.
#[derive(Clone, Debug, PartialEq)]
pub struct DotEdge {
    pub from: String,
    pub to: String,
    /// Edge label, e.g. `0.82 (0.9s)`.
    pub label: String,
}

/// Emit a Graphviz digraph for a propagation figure.
pub fn dot_graph(name: &str, edges: &[DotEdge]) -> String {
    let mut out = format!("digraph \"{name}\" {{\n  rankdir=LR;\n  node [shape=box];\n");
    for e in edges {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];\n",
            e.from, e.to, e.label
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let items = vec![("a".to_string(), 10.0), ("bb".to_string(), 5.0)];
        let s = ascii_bars(&items, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains(&"#".repeat(10)));
        assert!(lines[1].contains(&"#".repeat(5)));
        assert!(lines[1].starts_with("bb"));
    }

    #[test]
    fn bars_handle_all_zero() {
        let items = vec![("x".to_string(), 0.0)];
        let s = ascii_bars(&items, 10);
        assert!(s.contains("| "));
    }

    #[test]
    fn cdf_plot_has_expected_shape() {
        let points: Vec<(f64, f64)> = (0..=10).map(|i| (i as f64, i as f64 / 10.0)).collect();
        let s = ascii_cdf(&points, 5, 21);
        assert_eq!(s.lines().count(), 6);
        // Top-right and bottom-left corners are populated.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].ends_with('*'));
        assert!(lines[4].contains('*'));
    }

    #[test]
    fn cdf_empty_is_empty() {
        assert!(ascii_cdf(&[], 5, 10).is_empty());
    }

    #[test]
    fn dot_output_is_valid_graphviz() {
        let edges = vec![DotEdge {
            from: "PMU SPI Error".into(),
            to: "MMU Error".into(),
            label: "0.82 (0.9s)".into(),
        }];
        let dot = dot_graph("fig5", &edges);
        assert!(dot.starts_with("digraph \"fig5\" {"));
        assert!(dot.contains("\"PMU SPI Error\" -> \"MMU Error\" [label=\"0.82 (0.9s)\"];"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
