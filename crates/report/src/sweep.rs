//! The `gpures sweep` battery driver: run a set of parsed
//! [`Scenario`]s — every declared seed of each — through the full
//! campaign → (optional jobs) → analysis pipeline in parallel, and fold
//! the results into one deterministic cross-scenario comparison artifact
//! (`gpures-sweep/v1` JSON).
//!
//! Design rules:
//!
//! - **No file parsing here.** The CLI reads `.scn` sources and battery
//!   directories; this module takes parsed scenarios. (It *writes*
//!   per-run tee artifacts when asked — records stores and metrics
//!   exports — because those are produced mid-run, inside the worker.)
//! - **No wall-clock in the artifact.** `sweep.json` must be
//!   byte-identical across `--workers 1` and `--workers 8`; timing lives
//!   in `BENCH_sweep.json` (`dr-bench`) and on stderr, never here. For
//!   the same reason the artifact does not record the worker count.
//! - **Paper recipes, not new ones.** The jobs path is exactly the
//!   Section 5 recipe from `tests/paper_numbers.rs` (drain windows from
//!   ground-truth events, scheduler, masking), and the `expect`
//!   verdicts reuse the [`crate::paper`] tolerance tables.

use crate::expect::Verdict;
use crate::paper::{ampere_comparison, h100_comparison};
use dr_faults::Campaign;
use dr_gpu::device::Consequence;
use dr_obs::json::Json;
use dr_obs::MetricsSink;
use dr_scenario::{ExpectRef, Scenario};
use dr_slurm::{apply_errors, DrainWindows, JobLoadConfig, MaskingModel, Scheduler};
use dr_xid::{DataError, Duration, Xid};
use rand::prelude::*;
use resilience_core::{write_store, PipelineBuilder, StudyConfig, StudyResults};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Per-run tee destinations. Both are optional; when set, each
/// `(scenario, seed)` run writes `<dir>/<scenario>_<seed>.<ext>` from
/// inside its worker.
#[derive(Clone, Debug, Default)]
pub struct SweepOptions {
    /// Tee each run's ground-truth `ErrorRecord`s into a columnar store
    /// (`.records`), replayable via `gpures analyze --from-records`.
    pub records_dir: Option<PathBuf>,
    /// Export each run's pipeline metrics (`gpures-metrics/v1`) to
    /// `.json`. These files contain wall-clock spans and are *not* part
    /// of the deterministic artifact.
    pub metrics_dir: Option<PathBuf>,
}

/// Run every `(scenario, seed)` pair of the battery in parallel (via
/// `dr-par`, so `--workers` / `DR_PAR_THREADS` apply) and return the
/// `gpures-sweep/v1` artifact. Rows are sorted by (scenario, seed), so
/// the artifact is independent of battery-file discovery order and of
/// the worker count.
pub fn run_battery(scenarios: &[Scenario], opts: &SweepOptions) -> Result<Json, DataError> {
    if scenarios.is_empty() {
        return Err(DataError::Usage {
            option: "sweep".to_string(),
            message: "the battery is empty; pass at least one .scn scenario".to_string(),
        });
    }
    let mut names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
    names.sort_unstable();
    if let Some(w) = names.windows(2).find(|w| w[0] == w[1]) {
        return Err(DataError::Usage {
            option: "sweep".to_string(),
            message: format!("battery contains scenario `{}` twice", w[0]),
        });
    }
    for dir in [&opts.records_dir, &opts.metrics_dir].into_iter().flatten() {
        std::fs::create_dir_all(dir).map_err(|e| DataError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
    }

    let mut units: Vec<(&Scenario, u64)> = Vec::new();
    for sc in scenarios {
        if sc.seeds.is_empty() {
            // Surface the missing-seeds defect before burning CPU on the
            // rest of the battery.
            sc.compile()?;
        }
        for &seed in &sc.seeds {
            units.push((sc, seed));
        }
    }
    units.sort_by(|a, b| (a.0.name.as_str(), a.1).cmp(&(b.0.name.as_str(), b.1)));

    let results = dr_par::par_map(&units, |&(sc, seed)| run_one(sc, seed, opts));
    let mut rows = Vec::with_capacity(results.len());
    for r in results {
        rows.push(r?);
    }

    let mut checked = 0u64;
    let mut passed = 0u64;
    let mut failed: Vec<Json> = Vec::new();
    for row in &rows {
        match row.get("expect").and_then(|e| e.get("pass")) {
            Some(&Json::Bool(ok)) => {
                checked += 1;
                if ok {
                    passed += 1;
                } else {
                    let name = row.get("scenario").and_then(Json::as_str).unwrap_or("?");
                    let seed = row.get("seed").and_then(Json::as_f64).unwrap_or(f64::NAN);
                    failed.push(Json::Str(format!("{name}@{seed}")));
                }
            }
            _ => {}
        }
    }

    Ok(Json::obj(vec![
        ("schema", Json::Str("gpures-sweep/v1".to_string())),
        ("scenarios", Json::Num(scenarios.len() as f64)),
        ("runs", Json::Num(rows.len() as f64)),
        (
            "summary",
            Json::obj(vec![
                ("checked", Json::Num(checked as f64)),
                ("passed", Json::Num(passed as f64)),
                ("failed", Json::Arr(failed)),
            ]),
        ),
        ("rows", Json::Arr(rows)),
    ]))
}

/// One battery unit: campaign, optional workload, analysis, tees, row.
fn run_one(sc: &Scenario, seed: u64, opts: &SweepOptions) -> Result<Json, DataError> {
    let cfg = sc.compile_seed(seed);
    let nodes = cfg.shape.node_count();
    let gpus = cfg.shape.gpu_count();
    let duration_days = cfg.duration_days;
    let out = Campaign::run(cfg);

    // The Section 5 workload recipe: drain windows from ground-truth
    // fatal events, placement, then masked error attribution.
    let jobs = sc.jobs.map(|spec| {
        let drains = DrainWindows::from_events(
            out.events
                .iter()
                .filter(|e| {
                    matches!(e.consequence, Consequence::GpuErrorState | Consequence::GpuLost)
                        && e.xid != Xid::UncontainedEcc
                })
                .map(|e| (e.gpu.node, e.at)),
            Duration::from_hours(24),
        );
        let load = JobLoadConfig {
            total_jobs: spec.job_count(nodes, duration_days),
            duration_days,
            ..JobLoadConfig::delta_study(spec.seed)
        };
        let mut schedule = Scheduler::new(load).run(&out.fleet, &drains);
        let mut rng = StdRng::seed_from_u64(spec.mask_seed);
        apply_errors(&mut schedule.jobs, &out.events, &MaskingModel::default(), &mut rng);
        schedule.jobs
    });

    // The Ampere reference keeps the paper's fixed 855-day/206-node
    // window (its tolerances assume it); everything else is normalized to
    // its own campaign window.
    let study = if sc.expect == ExpectRef::Ampere {
        StudyConfig::ampere_study()
    } else {
        StudyConfig::ampere_study().with_window(out.observation_hours(), nodes)
    };

    let sink = if opts.metrics_dir.is_some() {
        MetricsSink::recording()
    } else {
        MetricsSink::disabled()
    };
    let results = PipelineBuilder::new(study)
        .maybe_jobs(jobs.as_deref())
        .downtime(&out.downtime)
        .metrics(sink.clone())
        .run_records(&out.records);

    if let Some(dir) = &opts.records_dir {
        write_records_tee(&tee_path(dir, sc, seed, "records"), &out.records)?;
    }
    if let Some(dir) = &opts.metrics_dir {
        // dr-lint: allow(obs-isolation): the export goes straight to the per-run tee file, never into the sweep artifact or any analysis number
        if let Some(doc) = sink.export_json() {
            let path = tee_path(dir, sc, seed, "json");
            std::fs::write(&path, doc.render()).map_err(|e| DataError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
        }
    }

    Ok(row(sc, seed, nodes, gpus, duration_days, &out, &results))
}

fn tee_path(dir: &Path, sc: &Scenario, seed: u64, ext: &str) -> PathBuf {
    dir.join(format!("{}_{}.{}", sc.name, seed, ext))
}

/// Group ground-truth records per node and write the columnar store.
fn write_records_tee(
    path: &Path,
    records: &[dr_xid::ErrorRecord],
) -> Result<(), DataError> {
    let mut per_node: BTreeMap<dr_xid::NodeId, Vec<dr_xid::ErrorRecord>> = BTreeMap::new();
    for r in records {
        per_node.entry(r.gpu.node).or_default().push(*r);
    }
    let nodes: Vec<dr_xid::NodeId> = per_node.keys().copied().collect();
    let streams: Vec<Vec<dr_xid::ErrorRecord>> = per_node.into_values().collect();
    write_store(path, &nodes, &streams).map(|_| ())
}

/// One artifact row: identity, scale, per-XID MTBE, propagation shape,
/// offender concentration, job impact, and the reference verdict.
fn row(
    sc: &Scenario,
    seed: u64,
    nodes: u32,
    gpus: u32,
    duration_days: f64,
    out: &dr_faults::CampaignOutput,
    r: &StudyResults,
) -> Json {
    let mtbe: Vec<Json> = r
        .table1
        .iter()
        .map(|t| {
            Json::obj(vec![
                ("xid", Json::Num(t.xid.code() as f64)),
                ("count", Json::Num(t.count as f64)),
                (
                    "mtbe_node_h",
                    t.mtbe_per_node_h.map(Json::Num).unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();

    let prop = &r.propagation;
    let propagation = Json::obj(vec![
        (
            "dbe_to_remap",
            Json::Num(prop.intra_probability(Xid::DoubleBitEcc, Xid::RowRemapEvent)),
        ),
        (
            "pmu_to_mmu",
            Json::Num(prop.intra_probability(Xid::PmuSpiError, Xid::MmuError)),
        ),
        ("nvlink_single_gpu", Json::Num(prop.nvlink.single_gpu)),
        ("nvlink_multi_gpu", Json::Num(prop.nvlink.multi_gpu)),
    ]);

    // Offender concentration over ground-truth episodes: what share of
    // the campaign's events the single worst GPU (and the worst five)
    // account for — Section 4.2 (iii)'s defective-part skew.
    let mut per_gpu: BTreeMap<dr_xid::GpuId, u64> = BTreeMap::new();
    for e in &out.events {
        *per_gpu.entry(e.gpu).or_insert(0) += 1;
    }
    let mut counts: Vec<u64> = per_gpu.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let total: u64 = counts.iter().sum();
    let share = |k: usize| -> f64 {
        if total == 0 {
            return 0.0;
        }
        counts.iter().take(k).sum::<u64>() as f64 / total as f64
    };
    let offenders = Json::obj(vec![
        ("gpus_with_events", Json::Num(counts.len() as f64)),
        ("top1_share", Json::Num(share(1))),
        ("top5_share", Json::Num(share(5))),
    ]);

    let jobs = match &r.job_impact {
        Some(ji) => Json::obj(vec![
            ("completed", Json::Num(ji.completed as f64)),
            ("failed_any", Json::Num(ji.failed_any as f64)),
            ("gpu_failed", Json::Num(ji.gpu_failed_total as f64)),
            ("success_rate", Json::Num(ji.success_rate)),
            ("lost_gpu_hours", Json::Num(ji.lost_gpu_hours)),
        ]),
        None => Json::Null,
    };

    let expect = match sc.expect {
        ExpectRef::None => Json::obj(vec![("reference", Json::Str("none".to_string()))]),
        reference => {
            let cmp = match reference {
                ExpectRef::H100 => h100_comparison(r),
                _ => ampere_comparison(r),
            };
            let mismatches: Vec<Json> = cmp
                .items
                .iter()
                .filter(|e| e.verdict() == Verdict::Mismatch)
                .map(|e| Json::Str(format!("{} {}", e.experiment, e.metric)))
                .collect();
            Json::obj(vec![
                ("reference", Json::Str(reference.label().to_string())),
                ("checks", Json::Num(cmp.items.len() as f64)),
                ("matches", Json::Num(cmp.matches() as f64)),
                ("pass", Json::Bool(mismatches.is_empty())),
                ("mismatched", Json::Arr(mismatches)),
            ])
        }
    };

    Json::obj(vec![
        ("scenario", Json::Str(sc.name.clone())),
        ("seed", Json::Num(seed as f64)),
        ("nodes", Json::Num(nodes as f64)),
        ("gpus", Json::Num(gpus as f64)),
        ("duration_days", Json::Num(duration_days)),
        ("events", Json::Num(out.events.len() as f64)),
        ("records", Json::Num(out.records.len() as f64)),
        (
            "mtbe_node_h",
            r.overall_mtbe_h.1.map(Json::Num).unwrap_or(Json::Null),
        ),
        (
            "availability",
            r.availability.map(Json::Num).unwrap_or(Json::Null),
        ),
        ("mtbe", Json::Arr(mtbe)),
        ("propagation", propagation),
        ("offenders", offenders),
        ("jobs", jobs),
        ("expect", expect),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_battery() -> Vec<Scenario> {
        // Derived from the bundled tiny preset but shortened: the sweep
        // unit tests must stay fast.
        let a = Scenario::parse(
            "scenario \"smoke_a\"\nfleet tiny\nduration_days = 10\nseeds = [7, 8]\nrates ampere_delta\nrates.* *= 0.3\n",
        )
        .expect("smoke_a parses");
        let b = Scenario::parse(
            "scenario \"smoke_b\"\nfleet tiny\nduration_days = 10\nseeds = [9]\nrates ampere_delta\nrates.* *= 0.3\njobs {\n  per_node_day = 10\n}\n",
        )
        .expect("smoke_b parses");
        vec![a, b]
    }

    #[test]
    fn artifact_shape_and_row_order() {
        let battery = tiny_battery();
        let doc = run_battery(&battery, &SweepOptions::default()).expect("sweep runs");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("gpures-sweep/v1")
        );
        let rows = doc.get("rows").and_then(Json::as_arr).expect("rows");
        let keys: Vec<(String, f64)> = rows
            .iter()
            .map(|r| {
                (
                    r.get("scenario")
                        .and_then(Json::as_str)
                        .expect("name")
                        .to_string(),
                    r.get("seed").and_then(Json::as_f64).expect("seed"),
                )
            })
            .collect();
        assert_eq!(
            keys,
            vec![
                ("smoke_a".to_string(), 7.0),
                ("smoke_a".to_string(), 8.0),
                ("smoke_b".to_string(), 9.0)
            ],
            "rows must be sorted by (scenario, seed)"
        );
        // The jobs scenario has job columns; the plain one has null.
        assert_eq!(rows[0].get("jobs"), Some(&Json::Null));
        assert!(rows[2].get("jobs").and_then(|j| j.get("completed")).is_some());
        // No reference → no pass verdict, and the summary counts that.
        assert_eq!(
            doc.get("summary").and_then(|s| s.get("checked")),
            Some(&Json::Num(0.0))
        );
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let mut battery = tiny_battery();
        battery[1].name = battery[0].name.clone();
        let e = run_battery(&battery, &SweepOptions::default()).expect_err("dup");
        assert!(e.to_string().contains("twice"), "{e}");
    }

    #[test]
    fn empty_battery_is_rejected() {
        let e = run_battery(&[], &SweepOptions::default()).expect_err("empty");
        assert!(e.to_string().contains("at least one"), "{e}");
    }
}
