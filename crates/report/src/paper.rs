//! Paper ground truth and comparison builders.
//!
//! Every number the paper reports for the experiments we reproduce,
//! encoded once, with builders that compare a [`StudyResults`] (and the
//! availability projections) against them. `delta_study` prints this
//! comparison and `EXPERIMENTS.md` records it.

use crate::expect::Comparison;
use dr_xid::Xid;
use resilience_core::StudyResults;

/// Table 1 ground truth: (xid, count, MTBE-sys h, MTBE-node h,
/// persistence mean s, p50 s, p95 s).
pub const TABLE1_PAPER: [(Xid, f64, f64, f64, f64, f64, f64); 10] = [
    (Xid::MmuError, 18_876.0, 1.09, 223.94, 2.85, 2.80, 5.80),
    (Xid::DoubleBitEcc, 32.0, 641.25, 132_097.5, 0.14, 0.12, 0.24),
    (Xid::RowRemapEvent, 95.0, 216.0, 44_496.0, 0.12, 0.12, 0.12),
    (Xid::RowRemapFailure, 35.0, 586.29, 120_774.9, 8.88, 2.90, 26.65),
    (Xid::NvlinkError, 2_987.0, 6.87, 1_415.2, 0.76, 0.24, 1.18),
    (Xid::FallenOffBus, 31.0, 661.94, 136_358.6, 2.71, 0.25, 12.03),
    (Xid::ContainedEcc, 28.0, 732.86, 150_968.6, 0.12, 0.12, 0.14),
    (Xid::UncontainedEcc, 38_905.0, 0.53, 108.69, 860.24, 75.22, 340.69),
    (Xid::GspRpcTimeout, 2_136.0, 9.61, 1_979.0, 12.14, 0.03, 100.85),
    (Xid::PmuSpiError, 128.0, 160.31, 33_024.4, 0.05, 0.06, 0.08),
];

/// Table 2 ground truth: (xid, gpu-failed jobs, jobs encountering,
/// failure probability %).
pub const TABLE2_PAPER: [(Xid, f64, f64, f64); 9] = [
    (Xid::MmuError, 3_760.0, 6_408.0, 58.67),
    (Xid::UncontainedEcc, 514.0, 529.0, 97.16),
    (Xid::PmuSpiError, 57.0, 59.0, 96.61),
    (Xid::GspRpcTimeout, 36.0, 36.0, 100.0),
    (Xid::NvlinkError, 23.0, 35.0, 65.71),
    (Xid::DoubleBitEcc, 9.0, 10.0, 90.0),
    (Xid::RowRemapFailure, 8.0, 8.0, 100.0),
    (Xid::ContainedEcc, 3.0, 3.0, 100.0),
    (Xid::RowRemapEvent, 1.0, 2.0, 50.0),
];

/// Compare the full Ampere study against the paper.
///
/// Count tolerances scale with rarity: Poisson noise alone puts ±2σ of a
/// 30-event class at ±37 %. Scheduling-emergent Table 2 exposure counts
/// get order-of-magnitude tolerances (the paper's own scheduler state is
/// unknowable); the *probabilities* are the tight comparisons there.
pub fn ampere_comparison(r: &StudyResults) -> Comparison {
    let mut c = Comparison::new();

    // --- T1: counts, MTBE, persistence -----------------------------------
    for &(xid, count, sys_h, node_h, mean_s, p50_s, p95_s) in &TABLE1_PAPER {
        let row = r.table1_row(xid).expect("table1 covers all studied XIDs");
        let count_tol = if count < 50.0 {
            0.6
        } else if count < 1_000.0 {
            0.30
        } else {
            0.15
        };
        let id = format!("T1:{}", xid.code());
        c.push(&id, "count", count, row.count as f64, count_tol);
        c.push(
            &id,
            "mtbe sys (h)",
            sys_h,
            row.mtbe_system_h.unwrap_or(f64::NAN),
            count_tol,
        );
        c.push(
            &id,
            "mtbe node (h)",
            node_h,
            row.mtbe_per_node_h.unwrap_or(f64::NAN),
            count_tol,
        );
        if row.count >= 5 {
            // Heavy-tailed persistence statistics over a handful of events
            // are sampling-noise dominated; widen accordingly.
            let f = if row.count < 50 { 2.0 } else { 1.0 };
            c.push(&id, "persistence p50 (s)", p50_s, row.persistence.p50, 0.5 * f);
            c.push(&id, "persistence p95 (s)", p95_s, row.persistence.p95, 0.6 * f);
            c.push(&id, "persistence mean (s)", mean_s, row.persistence.mean, 0.6 * f);
        }
    }

    // --- Headlines ---------------------------------------------------------
    if let (_, Some(node_mtbe)) = r.overall_mtbe_h {
        c.push("S4.2", "overall per-node MTBE (h)", 67.0, node_mtbe, 0.15);
    }
    if let Some(ratio) = r.category_mtbe.ratio {
        // ">30x more reliable": compare against the paper's computed 32.6
        // (26,093 / 800).
        c.push("S4.2", "memory/hardware MTBE ratio", 32.6, ratio, 0.4);
    }
    c.push(
        "S4.3",
        "lost-hours tail share beyond P95",
        0.91,
        r.lost_hours.tail_share,
        0.15,
    );

    // --- F5: hardware propagation ------------------------------------------
    let p = &r.propagation;
    c.push(
        "F5",
        "P(PMU SPI -> MMU)",
        0.82,
        p.intra_probability(Xid::PmuSpiError, Xid::MmuError),
        0.15,
    );
    c.push(
        "F5",
        "P(GSP isolated)",
        0.99,
        p.isolated.get(&Xid::GspRpcTimeout).copied().unwrap_or(0.0),
        0.05,
    );
    c.push(
        "F5",
        "P(GSP terminal: repeat/error state)",
        0.99,
        p.terminal.get(&Xid::GspRpcTimeout).copied().unwrap_or(0.0),
        0.10,
    );

    // --- F6: NVLink ---------------------------------------------------------
    c.push(
        "F6",
        "P(NVLink -> NVLink, same GPU)",
        0.66,
        p.intra_probability(Xid::NvlinkError, Xid::NvlinkError),
        0.20,
    );
    c.push("F6", "single-GPU incidents", 0.84, p.nvlink.single_gpu, 0.15);
    c.push("F6", "multi-GPU incidents", 0.16, p.nvlink.multi_gpu, 0.75);
    c.push("F6", "4+-GPU incidents", 0.05, p.nvlink.four_plus, 1.2);

    // --- F7: memory recovery paths ------------------------------------------
    c.push(
        "F7",
        "P(DBE -> RRE)",
        0.5,
        p.intra_probability(Xid::DoubleBitEcc, Xid::RowRemapEvent),
        0.35,
    );
    c.push(
        "F7",
        "P(DBE -> RRF)",
        0.5,
        p.intra_probability(Xid::DoubleBitEcc, Xid::RowRemapFailure),
        0.35,
    );
    c.push(
        "F7",
        "P(RRF -> contained)",
        0.43,
        p.intra_probability(Xid::RowRemapFailure, Xid::ContainedEcc),
        0.5,
    );

    // --- S5.5: counterfactual ------------------------------------------------
    let cf = &r.counterfactual;
    c.push("S5.5", "baseline MTBE (h)", 67.0, cf.baseline_mtbe_h, 0.15);
    c.push(
        "S5.5",
        "MTBE w/o top offenders (h)",
        190.0,
        cf.no_offenders_mtbe_h,
        0.35,
    );
    c.push(
        "S5.5",
        "MTBE hardened (h)",
        223.0,
        cf.hardened_mtbe_h,
        0.35,
    );
    c.push(
        "S5.5",
        "baseline availability",
        0.995,
        cf.baseline_availability,
        0.01,
    );
    c.push(
        "S5.5",
        "hardened availability",
        0.999,
        cf.hardened_availability,
        0.01,
    );

    // --- Downtime / availability ---------------------------------------------
    if let Some(d) = &r.downtime {
        c.push("F9c", "mean service time (h)", 0.3, d.mean_service_h, 0.25);
        c.push("F9c", "total lost node-hours", 5_700.0, d.total_lost_h, 0.5);
    }
    if let Some(a) = r.availability {
        c.push("S5.4", "node availability", 0.995, a, 0.005);
    }

    // --- T2 / job statistics ---------------------------------------------------
    if let Some(ji) = &r.job_impact {
        c.push(
            "S5.2",
            "job success rate",
            0.7468,
            ji.success_rate,
            0.03,
        );
        c.push(
            "T2",
            "total GPU-failed jobs",
            4_322.0,
            ji.gpu_failed_total as f64,
            1.0,
        );
        for &(xid, failed, encountering, prob_pct) in &TABLE2_PAPER {
            let Some(row) = ji.table2.iter().find(|t| t.xid == xid) else {
                continue;
            };
            let id = format!("T2:{}", xid.code());
            // Exposure counts are scheduling-emergent (they depend on
            // operational details like which nodes SREs kept drained):
            // order-of-magnitude for common XIDs, looser for rare ones.
            let tol = if encountering < 15.0 { 12.0 } else { 2.0 };
            c.push(&id, "jobs encountering", encountering, row.jobs_encountering as f64, tol);
            c.push(&id, "gpu-failed jobs", failed, row.gpu_failed_jobs as f64, tol);
            if row.jobs_encountering >= 5 {
                c.push(
                    &id,
                    "failure probability %",
                    prob_pct,
                    row.failure_probability() * 100.0,
                    0.30,
                );
            }
        }
    }
    if let Some(t3) = &r.table3 {
        // T3: shares and elapsed stats of the two dominant buckets.
        c.push("T3", "1-GPU share", 0.6986, t3[0].share, 0.03);
        c.push("T3", "2-4-GPU share", 0.2731, t3[1].share, 0.05);
        c.push("T3", "1-GPU mean elapsed (min)", 175.62, t3[0].elapsed_mean_min, 0.15);
        c.push("T3", "1-GPU p50 elapsed (min)", 10.15, t3[0].elapsed_p50_min, 0.25);
        c.push("T3", "2-4-GPU mean elapsed (min)", 145.04, t3[1].elapsed_mean_min, 0.15);
    }

    c
}

/// Section 6 ground truth for the H100 extension fleet.
pub fn h100_comparison(r: &StudyResults) -> Comparison {
    let mut c = Comparison::new();
    let count = |xid: Xid| r.table1_row(xid).map(|t| t.count as f64).unwrap_or(0.0);
    c.push("S6", "MMU errors", 18.0, count(Xid::MmuError), 0.8);
    c.push("S6", "DBEs", 10.0, count(Xid::DoubleBitEcc), 0.8);
    c.push("S6", "RRFs", 5.0, count(Xid::RowRemapFailure), 1.2);
    c.push("S6", "contained ECC", 9.0, count(Xid::ContainedEcc), 0.8);
    // XID 136 is not a Table 1 row; count from the coalesced stream.
    let x136 = r
        .coalesced
        .iter()
        .filter(|e| e.xid == Xid::Xid136)
        .count() as f64;
    c.push("S6", "XID 136 events", 70.0, x136, 0.4);
    if let (_, Some(node_mtbe)) = r.overall_mtbe_h {
        c.push("S6", "per-node MTBE (h)", 4_114.0, node_mtbe, 0.4);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_truth_tables_are_consistent() {
        // Table 1 totals: 63,253 errors.
        let total: f64 = TABLE1_PAPER.iter().map(|r| r.1).sum();
        assert!((total - 63_253.0).abs() < 1.0, "total {total}");
        // MTBE_node = MTBE_sys * 206 nodes (Table 1 footnote).
        for &(xid, _, sys, node, ..) in &TABLE1_PAPER {
            let derived = sys * 206.0;
            assert!(
                (derived - node).abs() / node < 0.03,
                "{xid}: {derived} vs {node}"
            );
        }
        // Table 2 probabilities are failed/encountering.
        for &(xid, failed, enc, prob) in &TABLE2_PAPER {
            let derived = failed / enc * 100.0;
            assert!((derived - prob).abs() < 0.5, "{xid}");
        }
    }
}
