//! Concrete renderers: `StudyResults` → the paper's tables and figures.

use crate::figures::{ascii_bars, dot_graph, DotEdge};
use crate::table::{fmt_count, fmt_opt, Align, Table};
use dr_xid::Xid;
use resilience_core::{JobImpactAnalysis, PropagationAnalysis, StudyResults, Table3Row};

/// Table 1: per-XID count, MTBE, persistence.
pub fn render_table1(results: &StudyResults) -> Table {
    let mut t = Table::new(vec![
        "XID", "Event", "Category", "Count", "MTBE sys (h)", "MTBE node (h)", "Pers. mean (s)",
        "P50", "P95",
    ])
    .aligns(vec![
        Align::Right,
        Align::Left,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ])
    .title("Table 1: GPU error statistics");
    for row in &results.table1 {
        t.row(vec![
            row.xid.code().to_string(),
            row.xid.abbrev().to_string(),
            row.xid.category().to_string(),
            fmt_count(row.count),
            fmt_opt(row.mtbe_system_h, 2),
            fmt_opt(row.mtbe_per_node_h, 1),
            format!("{:.2}", row.persistence.mean),
            format!("{:.2}", row.persistence.p50),
            format!("{:.2}", row.persistence.p95),
        ]);
    }
    t
}

/// Table 2: job failure probability per XID.
pub fn render_table2(ji: &JobImpactAnalysis) -> Table {
    let mut t = Table::new(vec![
        "XID", "GPU Error", "# GPU-failed jobs", "# Jobs encountering", "P(fail | XID) %",
    ])
    .aligns(vec![
        Align::Right,
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
    ])
    .title("Table 2: GPU-failed jobs per error type");
    for row in &ji.table2 {
        t.row(vec![
            row.xid.code().to_string(),
            row.xid.abbrev().to_string(),
            fmt_count(row.gpu_failed_jobs),
            fmt_count(row.jobs_encountering),
            format!("{:.2}", row.failure_probability() * 100.0),
        ]);
    }
    t
}

/// Table 3: job distribution by GPU count.
pub fn render_table3(rows: &[Table3Row]) -> Table {
    let mut t = Table::new(vec![
        "GPUs", "Count", "%", "Mean (min)", "P50", "P99", "ML GPUh (k)", "Non-ML GPUh (k)",
    ])
    .aligns(vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ])
    .title("Table 3: job distribution and GPU hours");
    for r in rows {
        let label = if r.max_gpus == u16::MAX {
            format!("{}+", r.min_gpus)
        } else if r.min_gpus == r.max_gpus {
            r.min_gpus.to_string()
        } else {
            format!("{}-{}", r.min_gpus, r.max_gpus)
        };
        t.row(vec![
            label,
            fmt_count(r.count),
            format!("{:.3}", r.share * 100.0),
            format!("{:.2}", r.elapsed_mean_min),
            format!("{:.2}", r.elapsed_p50_min),
            format!("{:.2}", r.elapsed_p99_min),
            format!("{:.1}", r.ml_gpu_hours_k),
            format!("{:.1}", r.non_ml_gpu_hours_k),
        ]);
    }
    t
}

fn edges_for(prop: &PropagationAnalysis, members: &[Xid], intra: bool) -> Vec<DotEdge> {
    let list = if intra { &prop.intra } else { &prop.inter };
    list.iter()
        .filter(|e| members.contains(&e.from) && members.contains(&e.to) && e.count > 0)
        .map(|e| DotEdge {
            from: e.from.abbrev().to_string(),
            to: if intra {
                e.to.abbrev().to_string()
            } else {
                format!("{} (peer GPU)", e.to.abbrev())
            },
            label: format!("{:.2} ({:.1}s)", e.probability, e.mean_delay_s),
        })
        .collect()
}

/// Figure 5: intra-GPU hardware propagation graph (DOT).
pub fn render_fig5(prop: &PropagationAnalysis) -> String {
    let members = [
        Xid::GspRpcTimeout,
        Xid::PmuSpiError,
        Xid::MmuError,
        Xid::FallenOffBus,
    ];
    let mut edges = edges_for(prop, &members, true);
    // Terminal annotations as self-edges to an "error state" node.
    for &xid in &[Xid::GspRpcTimeout, Xid::FallenOffBus] {
        if let Some(&p) = prop.terminal.get(&xid) {
            edges.push(DotEdge {
                from: xid.abbrev().to_string(),
                to: "GPU error state".to_string(),
                label: format!("{p:.2}"),
            });
        }
    }
    dot_graph("Figure 5: intra-GPU hardware propagation", &edges)
}

/// Figure 6: NVLink propagation (DOT) plus the involvement summary.
pub fn render_fig6(prop: &PropagationAnalysis) -> String {
    let mut edges = edges_for(prop, &[Xid::NvlinkError], true);
    edges.extend(edges_for(prop, &[Xid::NvlinkError], false));
    if let Some(&p) = prop.terminal.get(&Xid::NvlinkError) {
        edges.push(DotEdge {
            from: Xid::NvlinkError.abbrev().to_string(),
            to: "GPU error state".to_string(),
            label: format!("{p:.2}"),
        });
    }
    let mut s = dot_graph("Figure 6: NVLink propagation", &edges);
    let nv = &prop.nvlink;
    s.push_str(&format!(
        "\nNVLink incidents: {}  single-GPU {:.0}%  multi-GPU {:.0}%  4+ GPUs {:.0}%  all-8 incidents {}\n",
        nv.incidents,
        nv.single_gpu * 100.0,
        nv.multi_gpu * 100.0,
        nv.four_plus * 100.0,
        nv.all_eight
    ));
    s
}

/// Figure 7: memory error recovery paths (DOT).
pub fn render_fig7(prop: &PropagationAnalysis) -> String {
    let members = [
        Xid::DoubleBitEcc,
        Xid::RowRemapEvent,
        Xid::RowRemapFailure,
        Xid::ContainedEcc,
        Xid::UncontainedEcc,
    ];
    let edges = edges_for(prop, &members, true);
    dot_graph("Figure 7: memory error recovery paths", &edges)
}

/// Figure 9a: elapsed-time distribution of completed vs GPU-failed jobs.
pub fn render_fig9a(ji: &JobImpactAnalysis) -> String {
    let mut out = String::from("Figure 9a: jobs by elapsed time (minutes)\n");
    for (name, hist) in [
        ("completed", &ji.distributions.completed),
        ("GPU-failed", &ji.distributions.gpu_failed),
    ] {
        out.push_str(&format!("  [{name}] n={}\n", hist.count()));
        let items: Vec<(String, f64)> = hist
            .iter_bins()
            .filter(|(_, _, c)| *c > 0)
            .map(|(lo, hi, c)| (format!("{lo:>6.0}-{hi:<6.0}"), c as f64))
            .collect();
        out.push_str(&ascii_bars(&items, 40));
    }
    out
}

/// Figure 9b: errors encountered vs job duration.
pub fn render_fig9b(ji: &JobImpactAnalysis) -> String {
    let mut out = String::from("Figure 9b: GPU errors encountered vs job duration\n");
    for (name, samples) in [
        ("completed", &ji.distributions.errors_vs_duration_completed),
        ("GPU-failed", &ji.distributions.errors_vs_duration_failed),
    ] {
        let (short, long): (Vec<_>, Vec<_>) = samples.iter().partition(|(m, _)| *m < 4_000.0);
        let mean = |v: &[&(f64, u32)]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().map(|(_, e)| *e as f64).sum::<f64>() / v.len() as f64
            }
        };
        out.push_str(&format!(
            "  [{name}] jobs with errors: {} | mean errors: <4000 min: {:.2}, >=4000 min: {:.2}\n",
            samples.len(),
            mean(&short.iter().collect::<Vec<_>>()),
            mean(&long.iter().collect::<Vec<_>>()),
        ));
    }
    out
}

/// The headline findings summary (abstract / Section 4.1 numbers).
pub fn render_summary(results: &StudyResults) -> String {
    let mut s = String::from("== Study summary ==\n");
    if let (_, Some(node)) = results.overall_mtbe_h {
        s.push_str(&format!("overall per-node MTBE: {node:.1} h\n"));
    }
    if let Some(ratio) = results.category_mtbe.ratio {
        s.push_str(&format!(
            "GPU memory vs hardware MTBE ratio: {ratio:.1}x (memory {} h, hardware {} h)\n",
            fmt_opt(results.category_mtbe.memory_per_node_h, 0),
            fmt_opt(results.category_mtbe.hardware_per_node_h, 0),
        ));
    }
    s.push_str(&format!(
        "lost GPU hours: {:.0} (beyond-P95 tail share {:.0}%)\n",
        results.lost_hours.total_h,
        results.lost_hours.tail_share * 100.0
    ));
    let cf = &results.counterfactual;
    s.push_str(&format!(
        "counterfactual MTBE: {:.0} -> {:.0} -> {:.0} h; availability {:.2}% -> {:.2}%\n",
        cf.baseline_mtbe_h,
        cf.no_offenders_mtbe_h,
        cf.hardened_mtbe_h,
        cf.baseline_availability * 100.0,
        cf.hardened_availability * 100.0
    ));
    if let Some(a) = results.availability {
        s.push_str(&format!("measured node availability: {:.2}%\n", a * 100.0));
    }
    if let Some(d) = &results.downtime {
        s.push_str(&format!(
            "downtime: {} incidents, mean service {:.2} h, total lost {:.0} node-hours\n",
            d.incidents, d.mean_service_h, d.total_lost_h
        ));
    }
    if let Some(ji) = &results.job_impact {
        s.push_str(&format!(
            "jobs: success rate {:.2}%, GPU-failed {}, wasted {:.0} GPU hours\n",
            ji.success_rate * 100.0,
            ji.gpu_failed_total,
            ji.lost_gpu_hours
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{ErrorDetail, ErrorRecord, GpuId, NodeId, Timestamp};
    use resilience_core::StudyConfig;

    fn tiny_results() -> StudyResults {
        let g1 = GpuId::at_slot(NodeId(1), 0);
        let g2 = GpuId::at_slot(NodeId(1), 1);
        let records = vec![
            ErrorRecord::new(Timestamp::from_secs(100), g1, Xid::PmuSpiError, ErrorDetail::NONE),
            ErrorRecord::new(Timestamp::from_secs(101), g1, Xid::MmuError, ErrorDetail::NONE),
            ErrorRecord::new(Timestamp::from_secs(500), g1, Xid::NvlinkError, ErrorDetail::NONE),
            ErrorRecord::new(Timestamp::from_secs(503), g2, Xid::NvlinkError, ErrorDetail::NONE),
            ErrorRecord::new(Timestamp::from_secs(900), g1, Xid::GspRpcTimeout, ErrorDetail::NONE),
        ];
        StudyResults::from_records(
            &records,
            None,
            None,
            StudyConfig::ampere_study().with_window(1_000.0, 10),
        )
    }

    #[test]
    fn table1_renders_all_rows() {
        let t = render_table1(&tiny_results());
        assert_eq!(t.row_count(), 10);
        let s = t.render();
        assert!(s.contains("MMU Error"));
        assert!(s.contains("GSP Error"));
    }

    #[test]
    fn fig5_contains_pmu_mmu_edge() {
        let r = tiny_results();
        let dot = render_fig5(&r.propagation);
        assert!(dot.contains("PMU SPI Error"), "{dot}");
        assert!(dot.contains("MMU Error"));
        assert!(dot.contains("GPU error state"));
    }

    #[test]
    fn fig6_reports_incidents() {
        let r = tiny_results();
        let s = render_fig6(&r.propagation);
        assert!(s.contains("NVLink incidents: 2"));
        assert!(s.contains("multi-GPU 50%"));
    }

    #[test]
    fn fig7_renders_even_when_empty() {
        let r = tiny_results();
        let dot = render_fig7(&r.propagation);
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn summary_mentions_counterfactual() {
        let s = render_summary(&tiny_results());
        assert!(s.contains("counterfactual MTBE"));
        assert!(s.contains("per-node MTBE"));
    }
}
