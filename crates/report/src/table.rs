//! Fixed-width ASCII tables and CSV output.

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    Left,
    Right,
}

/// A simple table builder.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl Table {
    /// Start a table with headers; numbers default to right alignment via
    /// [`Table::aligns`].
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; headers.len()];
        Table {
            headers,
            aligns,
            rows: Vec::new(),
            title: None,
        }
    }

    /// Set a caption printed above the table.
    pub fn title<S: Into<String>>(mut self, title: S) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Set per-column alignment (panics on length mismatch).
    pub fn aligns(mut self, aligns: Vec<Align>) -> Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment arity");
        self.aligns = aligns;
        self
    }

    /// Append one row (panics on arity mismatch).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Render as an aligned ASCII table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }

        let mut out = String::new();
        if let Some(t) = &self.title {
            out.push_str(t);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for i in 0..ncols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i].saturating_sub(cell.chars().count());
                match aligns[i] {
                    Align::Left => {
                        line.push_str(cell);
                        if i + 1 < ncols {
                            line.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        line.push_str(&" ".repeat(pad));
                        line.push_str(cell);
                    }
                }
            }
            line
        };

        out.push_str(&fmt_row(&self.headers, &widths, &vec![Align::Left; ncols]));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }

    /// Render as CSV (RFC-4180-ish: quotes only where needed).
    pub fn to_csv(&self) -> String {
        let quote = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format helpers used across the report renderers.
pub fn fmt_count(n: u64) -> String {
    // Thousands separators make Table 1 readable.
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Fixed-decimal float or "-" for None.
pub fn fmt_opt(v: Option<f64>, decimals: usize) -> String {
    match v {
        Some(x) => format!("{x:.decimals$}"),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = Table::new(vec!["name", "count"])
            .aligns(vec![Align::Left, Align::Right])
            .title("Demo");
        t.row(vec!["alpha", "5"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "Demo");
        assert!(lines[1].starts_with("name"));
        assert!(lines[2].starts_with("---"));
        assert!(lines[3].ends_with("    5"));
        assert!(lines[4].ends_with("12345"));
    }

    #[test]
    fn csv_quotes_when_needed() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["plain", "has,comma"]);
        t.row(vec!["has\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
        assert!(csv.starts_with("a,b\n"));
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn count_formatting() {
        assert_eq!(fmt_count(5), "5");
        assert_eq!(fmt_count(1_234), "1,234");
        assert_eq!(fmt_count(1_234_567), "1,234,567");
    }

    #[test]
    fn opt_formatting() {
        assert_eq!(fmt_opt(Some(1.23456), 2), "1.23");
        assert_eq!(fmt_opt(None, 2), "-");
    }
}
