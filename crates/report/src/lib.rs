//! # dr-report — rendering and paper-vs-measured comparison
//!
//! Turns [`resilience_core::StudyResults`] into the artifacts the paper
//! publishes:
//!
//! - [`table`]: fixed-width ASCII tables and CSV output.
//! - [`figures`]: ASCII bar charts / CDFs and Graphviz DOT emission for
//!   the propagation graphs (Figures 5–7).
//! - [`render`]: the concrete Table 1/2/3 and Figure 5/6/7/9 renderers.
//! - [`expect`]: the experiment registry — every reproduced number keyed
//!   by experiment id, with the paper's value, our measured value, and a
//!   tolerance verdict. `EXPERIMENTS.md` and the `delta_study` example
//!   print straight from this registry.

pub mod expect;
pub mod files;
pub mod paper;
pub mod figures;
pub mod render;
pub mod sweep;
pub mod table;

pub use expect::{Comparison, Expectation, Verdict};
pub use sweep::{run_battery, SweepOptions};
pub use paper::{ampere_comparison, h100_comparison};
pub use figures::{ascii_bars, ascii_cdf, dot_graph, DotEdge};
pub use render::{render_fig5, render_fig6, render_fig7, render_fig9a, render_fig9b, render_summary, render_table1, render_table2, render_table3};
pub use table::{Align, Table};
