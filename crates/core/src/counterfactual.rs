//! Counterfactual resilience analysis (Section 5.5).
//!
//! Two what-ifs, applied to the coalesced error stream:
//!
//! 1. **Remove top-offending GPUs**: for every error type, drop the GPU
//!    contributing the most occurrences (the defective parts that
//!    comprehensive burn-in testing would have culled). The paper sees
//!    node MTBE improve 3× from 67 to 190 hours.
//! 2. **Additionally remove peripheral-hardware errors** (GSP, PMU SPI,
//!    NVLink) — the improvement available from hardening the weak links:
//!    a further 16 % to 223 hours, lifting availability from 99.5 % to
//!    99.9 % and cutting overprovisioning 4×.

use crate::coalesce::CoalescedError;
use dr_stats::Mtbe;
use dr_xid::{GpuId, Xid};
use std::collections::BTreeMap;

/// The Section 5.5 report.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterfactualReport {
    /// Observed per-node MTBE over all characterized errors (paper: 67 h).
    pub baseline_mtbe_h: f64,
    /// Per-node MTBE with top offenders removed (paper: 190 h).
    pub no_offenders_mtbe_h: f64,
    /// ... and with GSP/PMU-SPI/NVLink errors also removed (paper: 223 h).
    pub hardened_mtbe_h: f64,
    /// Availability at the baseline MTBE (paper: 99.5 %).
    pub baseline_availability: f64,
    /// Availability at the hardened MTBE (paper: 99.9 %).
    pub hardened_availability: f64,
    /// The GPU dropped per error type.
    pub offenders: Vec<(Xid, GpuId, u64)>,
}

/// Run the counterfactual. `mttr_h` is the measured mean repair time.
pub fn counterfactual(
    errors: &[CoalescedError],
    observation_hours: f64,
    node_count: u32,
    mttr_h: f64,
) -> CounterfactualReport {
    let mtbe = Mtbe::new(observation_hours, node_count);
    let characterized: Vec<&CoalescedError> = errors
        .iter()
        .filter(|e| e.xid.is_characterized())
        .collect();

    let baseline_count = characterized.len() as u64;
    let baseline_mtbe_h = mtbe.per_node_hours(baseline_count).unwrap_or(f64::INFINITY);

    // Top offender per error type.
    let mut per_xid_gpu: BTreeMap<(Xid, GpuId), u64> = BTreeMap::new();
    for e in &characterized {
        *per_xid_gpu.entry((e.xid, e.gpu)).or_default() += 1;
    }
    let mut offenders: Vec<(Xid, GpuId, u64)> = Vec::new();
    for &xid in &Xid::TABLE1 {
        if let Some((&(_, gpu), &count)) = per_xid_gpu
            .iter()
            .filter(|((x, _), _)| *x == xid)
            .max_by_key(|(_, &c)| c)
        {
            offenders.push((xid, gpu, count));
        }
    }

    let is_offender = |e: &CoalescedError| {
        offenders
            .iter()
            .any(|&(xid, gpu, _)| e.xid == xid && e.gpu == gpu)
    };

    let no_offender_count = characterized.iter().filter(|e| !is_offender(e)).count() as u64;
    let no_offenders_mtbe_h = mtbe
        .per_node_hours(no_offender_count)
        .unwrap_or(f64::INFINITY);

    let peripheral = [Xid::GspRpcTimeout, Xid::PmuSpiError, Xid::NvlinkError];
    let hardened_count = characterized
        .iter()
        .filter(|e| !is_offender(e) && !peripheral.contains(&e.xid))
        .count() as u64;
    let hardened_mtbe_h = mtbe.per_node_hours(hardened_count).unwrap_or(f64::INFINITY);

    CounterfactualReport {
        baseline_mtbe_h,
        no_offenders_mtbe_h,
        hardened_mtbe_h,
        baseline_availability: Mtbe::availability(baseline_mtbe_h, mttr_h),
        hardened_availability: Mtbe::availability(hardened_mtbe_h, mttr_h),
        offenders,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{Duration, ErrorDetail, NodeId, Timestamp};

    fn err(xid: Xid, node: u32, at_s: u64) -> CoalescedError {
        CoalescedError {
            gpu: GpuId::at_slot(NodeId(node), 0),
            xid,
            detail: ErrorDetail::NONE,
            start: Timestamp::from_secs(at_s),
            last: Timestamp::from_secs(at_s) + Duration::from_secs(1),
            merged: 1,
        }
    }

    #[test]
    fn offender_removal_improves_mtbe() {
        // 90 uncontained errors on one GPU, 10 spread elsewhere.
        let mut errors: Vec<_> = (0..90).map(|i| err(Xid::UncontainedEcc, 1, i * 100)).collect();
        for i in 0..10 {
            errors.push(err(Xid::UncontainedEcc, 2 + i, 50 + i as u64 * 333));
        }
        let r = counterfactual(&errors, 1_000.0, 10, 0.3);
        // Baseline: 100 errors; no-offender: 10.
        assert!((r.baseline_mtbe_h - 100.0).abs() < 1e-9);
        assert!((r.no_offenders_mtbe_h - 1_000.0).abs() < 1e-9);
        assert!(r.hardened_mtbe_h >= r.no_offenders_mtbe_h);
        let off = r.offenders.iter().find(|(x, _, _)| *x == Xid::UncontainedEcc).unwrap();
        assert_eq!(off.1, GpuId::at_slot(NodeId(1), 0));
        assert_eq!(off.2, 90);
    }

    #[test]
    fn hardening_removes_peripheral_errors() {
        let mut errors: Vec<_> = (0..10).map(|i| err(Xid::GspRpcTimeout, i, i as u64)).collect();
        errors.extend((0..10).map(|i| err(Xid::MmuError, 20 + i, 100 + i as u64)));
        let r = counterfactual(&errors, 1_000.0, 10, 0.3);
        // Offender removal drops 1 GSP + 1 MMU error (top GPU has 1 each);
        // hardening then removes the remaining 9 GSP errors.
        assert!((r.baseline_mtbe_h - 500.0).abs() < 1e-9);
        assert!((r.no_offenders_mtbe_h - 10_000.0 / 18.0).abs() < 1e-6);
        assert!((r.hardened_mtbe_h - 10_000.0 / 9.0).abs() < 1e-6);
        assert!(r.hardened_availability > r.baseline_availability);
    }

    #[test]
    fn software_errors_are_ignored() {
        let errors = vec![
            err(Xid::GraphicsEngineException, 1, 0),
            err(Xid::MmuError, 2, 10),
        ];
        let r = counterfactual(&errors, 100.0, 1, 0.3);
        assert!((r.baseline_mtbe_h - 100.0).abs() < 1e-9);
    }
}
