//! Online (streaming) variant of the pipeline.
//!
//! The batch pipeline answers "what happened over 855 days"; an SRE
//! monitor needs the same quantities *live*: coalesce errors as lines
//! arrive, keep running counts/MTBE, and track persistence quantiles in
//! constant memory (the P² estimator) — the operational deployment of the
//! paper's methodology that its Section 4.3 recommendations imply.
//!
//! [`StreamCoalescer`] is Algorithm 1 as an incremental operator: it is
//! **exactly equivalent** to the batch [`coalesce`](crate::coalesce::coalesce)
//! on a time-ordered stream (property-tested), emitting each coalesced
//! error as soon as its merge window expires.

use crate::coalesce::{CoalesceConfig, CoalescedError};
use dr_stats::{Mtbe, P2Quantile};
use dr_xid::{Duration, ErrorDetail, ErrorRecord, GpuId, Timestamp, Xid};
use std::collections::BTreeMap;

/// An episode still inside its merge window.
#[derive(Clone, Copy, Debug)]
struct OpenEpisode {
    start: Timestamp,
    last: Timestamp,
    merged: u32,
}

/// Incremental Algorithm 1.
#[derive(Clone, Debug)]
pub struct StreamCoalescer {
    cfg: CoalesceConfig,
    open: BTreeMap<(GpuId, Xid, ErrorDetail), OpenEpisode>,
    /// Latest record timestamp seen (stream clock).
    now: Option<Timestamp>,
    /// Write-only metrics; counts are flushed in bulk on [`Self::finish`]
    /// so the per-record path stays two plain integer increments.
    sink: dr_obs::MetricsSink,
    pushed: u64,
    emitted: u64,
}

impl StreamCoalescer {
    pub fn new(cfg: CoalesceConfig) -> Self {
        Self::with_metrics(cfg, dr_obs::MetricsSink::disabled())
    }

    /// A coalescer that reports record/episode counters into `sink` when
    /// the stream finishes. Emission is unaffected — the sink is
    /// write-only.
    pub fn with_metrics(cfg: CoalesceConfig, sink: dr_obs::MetricsSink) -> Self {
        StreamCoalescer {
            cfg,
            open: BTreeMap::new(),
            now: None,
            sink,
            pushed: 0,
            emitted: 0,
        }
    }

    /// Number of episodes currently open.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Feed one record (records must arrive in time order) and collect any
    /// episodes the advancing clock closed.
    ///
    /// # Panics
    /// If `rec` is older than a previously pushed record.
    pub fn push(&mut self, rec: &ErrorRecord) -> Vec<CoalescedError> {
        if let Some(now) = self.now {
            assert!(rec.at >= now, "stream must be time-ordered");
        }
        self.now = Some(rec.at);
        self.pushed += 1;
        let mut closed = self.expire(rec.at);

        let key = rec.identity();
        match self.open.get_mut(&key) {
            Some(ep)
                if rec.at - ep.last <= self.cfg.window
                    && rec.at - ep.start <= self.cfg.max_persistence =>
            {
                ep.last = rec.at;
                ep.merged += 1;
            }
            Some(ep) => {
                // Same identity, but the gap or the persistence cut-off
                // splits: close the old episode, open a new one.
                closed.push(close(key, *ep));
                *ep = OpenEpisode {
                    start: rec.at,
                    last: rec.at,
                    merged: 1,
                };
            }
            None => {
                self.open.insert(
                    key,
                    OpenEpisode {
                        start: rec.at,
                        last: rec.at,
                        merged: 1,
                    },
                );
            }
        }
        self.emitted += closed.len() as u64;
        closed
    }

    /// Advance the stream clock without a record (e.g. a timer tick),
    /// closing episodes whose windows expired.
    pub fn tick(&mut self, now: Timestamp) -> Vec<CoalescedError> {
        if let Some(cur) = self.now {
            if now < cur {
                return Vec::new();
            }
        }
        self.now = Some(now);
        let closed = self.expire(now);
        self.emitted += closed.len() as u64;
        closed
    }

    /// End of stream: close everything still open and flush counters to
    /// the metrics sink (a no-op for a disabled sink).
    pub fn finish(self) -> Vec<CoalescedError> {
        use dr_obs::{Counter, Stage};
        let mut out: Vec<CoalescedError> = self
            .open
            .into_iter()
            .map(|(key, ep)| close(key, ep))
            .collect();
        out.sort_by_key(|e| (e.start, e.gpu, e.xid));
        self.sink
            .add(Stage::Coalesce, Counter::Records, self.pushed);
        self.sink
            .add(Stage::Coalesce, Counter::Episodes, self.emitted + out.len() as u64);
        out
    }

    fn expire(&mut self, now: Timestamp) -> Vec<CoalescedError> {
        let window = self.cfg.window;
        let mut closed: Vec<CoalescedError> = Vec::new();
        self.open.retain(|key, ep| {
            if now - ep.last > window {
                closed.push(close(*key, *ep));
                false
            } else {
                true
            }
        });
        closed.sort_by_key(|e| (e.start, e.gpu, e.xid));
        closed
    }
}

/// Event-time reorder buffer in front of [`StreamCoalescer`].
///
/// A live tail interleaves per-node files, so records do not arrive
/// globally time-ordered — but [`StreamCoalescer::push`] requires a
/// monotone stream. The buffer holds records until the **watermark**
/// (latest event time seen minus an allowed lateness) passes them, then
/// releases them sorted by the total key `(at, gpu, xid, detail)`, which
/// makes the released order deterministic regardless of poll
/// interleaving. Records arriving *behind* what was already released
/// cannot be emitted without breaking monotonicity; they are counted in
/// [`WatermarkBuffer::late_dropped`] — the live session converges to the
/// batch answer exactly when that count is zero.
///
/// Purely event-time: the watermark advances only when ingested records
/// do, never from a wall clock.
#[derive(Clone, Debug)]
pub struct WatermarkBuffer {
    lateness: Duration,
    pending: Vec<ErrorRecord>,
    /// Latest event time ingested (the high watermark).
    max_seen: Option<Timestamp>,
    /// Latest event time already released downstream; releasing anything
    /// older would violate the coalescer's ordering contract.
    released: Option<Timestamp>,
    late_dropped: u64,
}

impl WatermarkBuffer {
    pub fn new(lateness: Duration) -> Self {
        WatermarkBuffer {
            lateness,
            pending: Vec::new(),
            max_seen: None,
            released: None,
            late_dropped: 0,
        }
    }

    /// Ingest one record. Records older than the released watermark are
    /// dropped (and counted) — emitting them would be out of order.
    pub fn push(&mut self, rec: ErrorRecord) {
        if let Some(released) = self.released {
            if rec.at < released {
                self.late_dropped += 1;
                return;
            }
        }
        self.max_seen = Some(self.max_seen.map_or(rec.at, |m| m.max(rec.at)));
        self.pending.push(rec);
    }

    /// Release every pending record at or behind the watermark
    /// (`max_seen − lateness`), sorted by `(at, gpu, xid, detail)`.
    pub fn drain_ready(&mut self) -> Vec<ErrorRecord> {
        let Some(max_seen) = self.max_seen else {
            return Vec::new();
        };
        let watermark = max_seen.saturating_sub(self.lateness);
        let mut ready: Vec<ErrorRecord> = Vec::new();
        self.pending.retain(|r| {
            if r.at <= watermark {
                ready.push(r.clone());
                false
            } else {
                true
            }
        });
        self.release(&mut ready);
        ready
    }

    /// End of stream (or a final drain): release everything pending,
    /// sorted, regardless of the watermark.
    pub fn flush(&mut self) -> Vec<ErrorRecord> {
        let mut ready = std::mem::take(&mut self.pending);
        self.release(&mut ready);
        ready
    }

    fn release(&mut self, ready: &mut [ErrorRecord]) {
        ready.sort_by(|a, b| {
            (a.at, a.gpu, a.xid, &a.detail).cmp(&(b.at, b.gpu, b.xid, &b.detail))
        });
        if let Some(last) = ready.last() {
            self.released = Some(self.released.map_or(last.at, |r| r.max(last.at)));
        }
    }

    /// Records dropped for arriving behind the released watermark.
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }

    /// Records currently held back by the watermark.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

fn close((gpu, xid, detail): (GpuId, Xid, ErrorDetail), ep: OpenEpisode) -> CoalescedError {
    CoalescedError {
        gpu,
        xid,
        detail,
        start: ep.start,
        last: ep.last,
        merged: ep.merged,
    }
}

/// Constant-memory running Table 1: per-XID counts, streaming persistence
/// quantiles (P²), and live MTBE against the elapsed observation window.
#[derive(Debug)]
pub struct OnlineStats {
    node_count: u32,
    started: Option<Timestamp>,
    latest: Option<Timestamp>,
    per_xid: BTreeMap<Xid, XidOnline>,
}

#[derive(Debug)]
struct XidOnline {
    count: u64,
    persistence_sum_s: f64,
    p50: P2Quantile,
    p95: P2Quantile,
}

/// One row of the live Table 1 view.
#[derive(Clone, Copy, Debug)]
pub struct OnlineRow {
    pub xid: Xid,
    pub count: u64,
    pub mtbe_per_node_h: Option<f64>,
    pub persistence_mean_s: f64,
    pub persistence_p50_s: Option<f64>,
    pub persistence_p95_s: Option<f64>,
}

impl OnlineStats {
    pub fn new(node_count: u32) -> Self {
        OnlineStats {
            node_count: node_count.max(1),
            started: None,
            latest: None,
            per_xid: BTreeMap::new(),
        }
    }

    /// Ingest one closed episode.
    pub fn observe(&mut self, e: &CoalescedError) {
        self.started = Some(self.started.map_or(e.start, |s| s.min(e.start)));
        self.latest = Some(self.latest.map_or(e.last, |l| l.max(e.last)));
        let entry = self.per_xid.entry(e.xid).or_insert_with(|| XidOnline {
            count: 0,
            persistence_sum_s: 0.0,
            p50: P2Quantile::new(0.5),
            p95: P2Quantile::new(0.95),
        });
        let p = e.persistence().as_secs_f64();
        entry.count += 1;
        entry.persistence_sum_s += p;
        entry.p50.push(p);
        entry.p95.push(p);
    }

    /// Elapsed observation window in hours.
    pub fn observation_hours(&self) -> f64 {
        match (self.started, self.latest) {
            (Some(s), Some(l)) => (l - s).as_hours_f64(),
            _ => 0.0,
        }
    }

    /// The live Table 1 rows, in the paper's order.
    pub fn rows(&self) -> Vec<OnlineRow> {
        let hours = self.observation_hours();
        Xid::TABLE1
            .iter()
            .map(|&xid| {
                let entry = self.per_xid.get(&xid);
                let count = entry.map_or(0, |e| e.count);
                let mtbe = (count > 0 && hours > 0.0)
                    .then(|| Mtbe::new(hours.max(1e-9), self.node_count))
                    .and_then(|m| m.per_node_hours(count));
                OnlineRow {
                    xid,
                    count,
                    mtbe_per_node_h: mtbe,
                    persistence_mean_s: entry
                        .filter(|e| e.count > 0)
                        .map_or(0.0, |e| e.persistence_sum_s / e.count as f64),
                    persistence_p50_s: entry.and_then(|e| e.p50.estimate()),
                    persistence_p95_s: entry.and_then(|e| e.p95.estimate()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coalesce::coalesce;
    use dr_xid::{Duration, NodeId};
    use proptest::prelude::*;

    fn rec(secs: f64, node: u32, xid: Xid) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::EPOCH + Duration::from_secs_f64(secs),
            GpuId::at_slot(NodeId(node), 0),
            xid,
            ErrorDetail::NONE,
        )
    }

    fn stream_all(records: &[ErrorRecord], cfg: CoalesceConfig) -> Vec<CoalescedError> {
        let mut s = StreamCoalescer::new(cfg);
        let mut out = Vec::new();
        for r in records {
            out.extend(s.push(r));
        }
        out.extend(s.finish());
        out.sort_by_key(|e| (e.start, e.gpu, e.xid));
        out
    }

    #[test]
    fn emits_episode_after_window_expires() {
        let mut s = StreamCoalescer::new(CoalesceConfig::default());
        assert!(s.push(&rec(0.0, 1, Xid::MmuError)).is_empty());
        assert!(s.push(&rec(3.0, 1, Xid::MmuError)).is_empty());
        assert_eq!(s.open_count(), 1);
        // Next record 60 s later closes the episode.
        let closed = s.push(&rec(60.0, 1, Xid::MmuError));
        assert_eq!(closed.len(), 1);
        assert_eq!(closed[0].merged, 2);
        assert_eq!(closed[0].persistence().as_secs_f64(), 3.0);
        assert_eq!(s.open_count(), 1); // the new episode
    }

    #[test]
    fn tick_closes_without_new_records() {
        let mut s = StreamCoalescer::new(CoalesceConfig::default());
        s.push(&rec(0.0, 1, Xid::NvlinkError));
        assert!(s.tick(Timestamp::from_secs(3)).is_empty());
        let closed = s.tick(Timestamp::from_secs(30));
        assert_eq!(closed.len(), 1);
        assert_eq!(s.open_count(), 0);
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_order_records() {
        let mut s = StreamCoalescer::new(CoalesceConfig::default());
        s.push(&rec(10.0, 1, Xid::MmuError));
        s.push(&rec(5.0, 1, Xid::MmuError));
    }

    #[test]
    fn online_stats_tracks_counts_and_quantiles() {
        let mut o = OnlineStats::new(10);
        for k in 0..200u64 {
            let start = Timestamp::from_secs(k * 1_000);
            o.observe(&CoalescedError {
                gpu: GpuId::at_slot(NodeId(1), 0),
                xid: Xid::MmuError,
                detail: ErrorDetail::NONE,
                start,
                last: start + Duration::from_secs_f64(2.0 + (k % 5) as f64),
                merged: 2,
            });
        }
        let rows = o.rows();
        let mmu = rows.iter().find(|r| r.xid == Xid::MmuError).unwrap();
        assert_eq!(mmu.count, 200);
        assert!((mmu.persistence_mean_s - 4.0).abs() < 0.1);
        let p50 = mmu.persistence_p50_s.unwrap();
        assert!((3.0..=5.0).contains(&p50), "p50 {p50}");
        assert!(mmu.mtbe_per_node_h.unwrap() > 0.0);
        // Unseen XIDs report zero rows.
        let dbe = rows.iter().find(|r| r.xid == Xid::DoubleBitEcc).unwrap();
        assert_eq!(dbe.count, 0);
        assert!(dbe.mtbe_per_node_h.is_none());
    }

    #[test]
    fn watermark_reorders_within_lateness() {
        let mut w = WatermarkBuffer::new(Duration::from_secs(10));
        w.push(rec(5.0, 1, Xid::MmuError));
        w.push(rec(2.0, 2, Xid::MmuError)); // out of order, within lateness
        w.push(rec(30.0, 1, Xid::MmuError)); // watermark -> 20
        let ready = w.drain_ready();
        let times: Vec<f64> = ready
            .iter()
            .map(|r| (r.at - Timestamp::EPOCH).as_secs_f64())
            .collect();
        assert_eq!(times, [2.0, 5.0]);
        assert_eq!(w.pending_len(), 1); // the 30 s record waits
        assert_eq!(w.late_dropped(), 0);
    }

    #[test]
    fn watermark_drops_and_counts_records_behind_the_release_point() {
        let mut w = WatermarkBuffer::new(Duration::from_secs(1));
        w.push(rec(10.0, 1, Xid::MmuError));
        w.push(rec(100.0, 1, Xid::MmuError));
        let released = w.drain_ready();
        assert_eq!(released.len(), 1); // the 10 s record
        // 3 s is far behind the released watermark (10 s): dropped.
        w.push(rec(3.0, 2, Xid::MmuError));
        assert_eq!(w.late_dropped(), 1);
        assert_eq!(w.flush().len(), 1); // only the 100 s record remains
    }

    #[test]
    fn watermark_released_stream_is_monotone_and_coalescer_safe() {
        // Random-ish interleaving from three "files"; the released stream
        // must feed StreamCoalescer without tripping its ordering assert.
        let mut w = WatermarkBuffer::new(Duration::from_secs(60));
        let mut s = StreamCoalescer::new(CoalesceConfig::default());
        let per_node: [&[f64]; 3] = [&[0.0, 9.0, 18.0], &[3.0, 6.0, 21.0], &[1.0, 2.0, 30.0]];
        for round in 0..3 {
            for (node, times) in per_node.iter().enumerate() {
                if let Some(&t) = times.get(round) {
                    w.push(rec(t, node as u32, Xid::MmuError));
                }
            }
            for r in w.drain_ready() {
                s.push(&r);
            }
        }
        for r in w.flush() {
            s.push(&r);
        }
        assert_eq!(w.late_dropped(), 0);
        let out = s.finish();
        assert!(!out.is_empty());
    }

    proptest! {
        /// The streaming coalescer is equivalent to batch Algorithm 1 on
        /// any time-ordered stream.
        #[test]
        fn stream_equals_batch(
            mut times in prop::collection::vec(0u64..20_000, 0..300),
            nodes in prop::collection::vec(0u32..3, 0..300),
            window in 2u64..30,
        ) {
            times.sort_unstable();
            let n = times.len().min(nodes.len());
            let records: Vec<_> = (0..n)
                .map(|i| rec(times[i] as f64, nodes[i], Xid::MmuError))
                .collect();
            let cfg = CoalesceConfig::with_window_secs(window);
            let batch = coalesce(&records, cfg);
            let stream = stream_all(&records, cfg);
            prop_assert_eq!(batch, stream);
        }
    }
}
