//! Log ingestion behind one streaming abstraction.
//!
//! The paper's Stage I corpus is 202 GB of per-node syslog — far beyond
//! what any analysis host should materialize. [`LogSource`] is the
//! pipeline's ingestion seam: a pull-based iterator over per-node,
//! line-boundary-aligned chunks of roughly `target_bytes` each, arriving
//! node-major and in order within a node. The shard driver
//! ([`crate::shard::extract_source_observed`]) pulls one *wave* of
//! chunks per worker pool, extracts it, and drops the text before
//! pulling the next — peak resident log text is O(workers ×
//! target_bytes) regardless of corpus size.
//!
//! Three implementations cover every way the repo obtains logs:
//!
//! - [`InMemorySource`] — wraps an already-materialized
//!   `&[(NodeId, Vec<String>)]`; chunk boundaries reproduce
//!   [`crate::shard::plan_chunks`] exactly, so every existing in-memory
//!   entry point is a thin adapter over the streaming path.
//! - [`DirSource`] — buffered incremental reads of a log directory (one
//!   `.log` file per node), replacing whole-file `read_to_string` in
//!   `gpures analyze`.
//! - [`GeneratorSource`] — pulls rendered lines straight out of a
//!   campaign's lazy [`dr_faults::textgen`] streams, so
//!   `gpures campaign` writes a corpus it never holds.
//!
//! All three yield identical line content for identical underlying data;
//! the pipeline's results are bit-identical across sources, chunk sizes,
//! and worker counts (tier-1 tested).

use dr_faults::{CampaignOutput, NodeTextStream};
use dr_xid::{DataError, NodeId};
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

/// One unit of streamed log text: a run of consecutive lines from one
/// node's log. `node` indexes the source's [`LogSource::nodes`] slice.
#[derive(Clone, Debug)]
pub struct LogChunk<'a> {
    /// Index into [`LogSource::nodes`].
    pub node: usize,
    /// The chunk's lines (no trailing newlines).
    pub lines: Cow<'a, [String]>,
    /// Byte volume as counted on disk: line bytes plus one newline each.
    pub bytes: u64,
}

/// A pull-based stream of per-node log text in line-aligned chunks.
///
/// Contract: chunks arrive node-major (all of node 0's chunks, then all
/// of node 1's, …) and in line order within a node; every line of every
/// node is yielded exactly once. `next_chunk` returns chunks of at least
/// `target_bytes` (the final chunk of a node may be smaller, and chunks
/// never split a line), then `None` when the source is exhausted.
pub trait LogSource<'a> {
    /// The node ids this source covers, in emission order. Nodes with no
    /// lines are listed but yield no chunks.
    fn nodes(&self) -> &[NodeId];

    /// Pull the next chunk of roughly `target_bytes`, or `None` at end.
    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'a>>, DataError>;

    /// Total corpus size in bytes when cheaply known (sizes chunks to the
    /// worker pool); `None` for generative sources.
    fn total_bytes_hint(&self) -> Option<u64> {
        None
    }
}

/// [`LogSource`] over an already-materialized corpus. Chunks borrow the
/// underlying lines (no copy) and reproduce the boundaries
/// [`crate::shard::plan_chunks`] would plan, making the streaming path a
/// strict generalization of the in-memory one.
pub struct InMemorySource<'a> {
    logs: &'a [(NodeId, Vec<String>)],
    nodes: Vec<NodeId>,
    node: usize,
    line: usize,
}

impl<'a> InMemorySource<'a> {
    pub fn new(logs: &'a [(NodeId, Vec<String>)]) -> Self {
        InMemorySource {
            logs,
            nodes: logs.iter().map(|(n, _)| *n).collect(),
            node: 0,
            line: 0,
        }
    }
}

impl<'a> LogSource<'a> for InMemorySource<'a> {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'a>>, DataError> {
        let target = target_bytes.max(1);
        while self.node < self.logs.len() {
            let lines = &self.logs[self.node].1;
            if self.line >= lines.len() {
                self.node += 1;
                self.line = 0;
                continue;
            }
            let start = self.line;
            let mut acc = 0u64;
            while self.line < lines.len() {
                acc += lines[self.line].len() as u64 + 1;
                self.line += 1;
                if acc >= target {
                    break;
                }
            }
            return Ok(Some(LogChunk {
                node: self.node,
                lines: Cow::Borrowed(&lines[start..self.line]),
                bytes: acc,
            }));
        }
        Ok(None)
    }

    fn total_bytes_hint(&self) -> Option<u64> {
        Some(
            self.logs
                .iter()
                .flat_map(|(_, lines)| lines.iter())
                .map(|l| l.len() as u64 + 1)
                .sum(),
        )
    }
}

/// [`LogSource`] over a directory of per-node `.log` files (the layout
/// `dr_report::files::write_node_logs` produces: `<host><id>.log`, one
/// per node, sorted by path). Files are read incrementally through a
/// `BufReader` — at no point is a whole file resident.
pub struct DirSource {
    nodes: Vec<NodeId>,
    paths: Vec<PathBuf>,
    cur: usize,
    reader: Option<BufReader<File>>,
    total_bytes: u64,
}

fn io_err(path: &Path, e: std::io::Error) -> DataError {
    DataError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

impl DirSource {
    /// Open a log directory: every `*.log` file, sorted by path, node id
    /// parsed from the digits of the file stem (`gpub017.log` → 17).
    pub fn open(dir: &Path) -> Result<DirSource, DataError> {
        let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
        let mut paths = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some("log") {
                paths.push(path);
            }
        }
        paths.sort();
        let mut nodes = Vec::with_capacity(paths.len());
        let mut total_bytes = 0u64;
        for path in &paths {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default();
            let id = stem
                .trim_start_matches(|c: char| c.is_ascii_alphabetic())
                .parse::<u32>()
                .map_err(|e| DataError::Io {
                    path: path.display().to_string(),
                    message: format!("file name does not encode a node id: {e}"),
                })?;
            nodes.push(NodeId(id));
            total_bytes += std::fs::metadata(path).map_err(|e| io_err(path, e))?.len();
        }
        Ok(DirSource {
            nodes,
            paths,
            cur: 0,
            reader: None,
            total_bytes,
        })
    }
}

impl LogSource<'static> for DirSource {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'static>>, DataError> {
        let target = target_bytes.max(1);
        while self.cur < self.paths.len() {
            let path = &self.paths[self.cur];
            if self.reader.is_none() {
                let file = File::open(path).map_err(|e| io_err(path, e))?;
                self.reader = Some(BufReader::new(file));
            }
            let Some(reader) = self.reader.as_mut() else {
                continue;
            };
            let mut lines = Vec::new();
            let mut acc = 0u64;
            let mut eof = false;
            while acc < target {
                let mut buf = String::new();
                let n = reader.read_line(&mut buf).map_err(|e| io_err(path, e))?;
                if n == 0 {
                    eof = true;
                    break;
                }
                if buf.ends_with('\n') {
                    buf.pop();
                    if buf.ends_with('\r') {
                        buf.pop();
                    }
                }
                acc += buf.len() as u64 + 1;
                lines.push(buf);
            }
            if eof {
                self.reader = None;
            }
            if lines.is_empty() {
                // Empty file (or a final read that hit EOF immediately):
                // move on without emitting a zero-line chunk.
                if eof {
                    self.cur += 1;
                }
                continue;
            }
            let node = self.cur;
            if eof {
                self.cur += 1;
            }
            return Ok(Some(LogChunk {
                node,
                lines: Cow::Owned(lines),
                bytes: acc,
            }));
        }
        Ok(None)
    }

    fn total_bytes_hint(&self) -> Option<u64> {
        Some(self.total_bytes)
    }
}

/// [`LogSource`] that renders a campaign's syslog text on demand from
/// its lazy [`dr_faults::textgen`] streams — the corpus never exists in
/// memory. Pair with `CampaignConfig::defer_text` so the campaign skips
/// eager rendering entirely.
pub struct GeneratorSource<'a> {
    nodes: Vec<NodeId>,
    streams: Vec<NodeTextStream<'a>>,
    cur: usize,
}

impl<'a> GeneratorSource<'a> {
    /// Stream the text corpus of a finished campaign.
    pub fn from_campaign(out: &'a CampaignOutput) -> Self {
        let (nodes, streams) = out.text_streams().into_iter().unzip();
        GeneratorSource {
            nodes,
            streams,
            cur: 0,
        }
    }
}

impl<'a> LogSource<'static> for GeneratorSource<'a> {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'static>>, DataError> {
        let target = target_bytes.max(1);
        while self.cur < self.streams.len() {
            let stream = &mut self.streams[self.cur];
            let mut lines = Vec::new();
            let mut acc = 0u64;
            while acc < target {
                let Some(line) = stream.next() else { break };
                acc += line.len() as u64 + 1;
                lines.push(line);
            }
            if lines.is_empty() {
                self.cur += 1;
                continue;
            }
            return Ok(Some(LogChunk {
                node: self.cur,
                lines: Cow::Owned(lines),
                bytes: acc,
            }));
        }
        Ok(None)
    }
}

/// Drain a source into the materialized `(node, lines)` form. Nodes that
/// yielded no chunks still appear, with empty line vectors. This is the
/// batch adapter for callers that genuinely need the whole corpus (the
/// baseline differential oracle, tests).
pub fn collect_source<'s>(
    source: &mut dyn LogSource<'s>,
) -> Result<Vec<(NodeId, Vec<String>)>, DataError> {
    let mut out: Vec<(NodeId, Vec<String>)> =
        source.nodes().iter().map(|&n| (n, Vec::new())).collect();
    while let Some(chunk) = source.next_chunk(u64::MAX)? {
        let Some(slot) = out.get_mut(chunk.node) else {
            return Err(DataError::Io {
                path: format!("<stream node #{}>", chunk.node),
                message: "chunk node index out of range for the source's node list".to_string(),
            });
        };
        slot.1.extend(chunk.lines.into_owned());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(NodeId, Vec<String>)> {
        vec![
            (
                NodeId(1),
                vec!["alpha".to_string(), "bravo line".to_string(), "c".to_string()],
            ),
            (NodeId(2), Vec::new()),
            (NodeId(5), vec!["delta".to_string(), "echo".to_string()]),
        ]
    }

    #[test]
    fn in_memory_chunks_match_plan_chunks_boundaries() {
        let logs = corpus();
        for target in [1u64, 7, 64, u64::MAX] {
            let plan = crate::shard::plan_chunks(&logs, target);
            let mut src = InMemorySource::new(&logs);
            let mut got = Vec::new();
            while let Some(c) = src.next_chunk(target).unwrap() {
                got.push((c.node, c.lines.len(), c.bytes));
            }
            let want: Vec<_> = plan
                .iter()
                .map(|c| (c.node, c.end - c.start, c.bytes))
                .collect();
            assert_eq!(got, want, "target {target}");
        }
    }

    #[test]
    fn collect_round_trips_including_empty_nodes() {
        let logs = corpus();
        let mut src = InMemorySource::new(&logs);
        assert_eq!(collect_source(&mut src).unwrap(), logs);
    }

    #[test]
    fn chunks_are_node_major_and_line_exact() {
        let logs = corpus();
        let mut src = InMemorySource::new(&logs);
        let mut last_node = 0usize;
        let mut all: Vec<Vec<String>> = vec![Vec::new(); logs.len()];
        while let Some(c) = src.next_chunk(6).unwrap() {
            assert!(c.node >= last_node, "chunks must be node-major");
            last_node = c.node;
            all[c.node].extend(c.lines.iter().cloned());
        }
        for (i, (_, lines)) in logs.iter().enumerate() {
            assert_eq!(&all[i], lines);
        }
    }
}
