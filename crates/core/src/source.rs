//! Log ingestion behind one streaming abstraction.
//!
//! The paper's Stage I corpus is 202 GB of per-node syslog — far beyond
//! what any analysis host should materialize. [`LogSource`] is the
//! pipeline's ingestion seam: a pull-based iterator over per-node,
//! line-boundary-aligned chunks of roughly `target_bytes` each, arriving
//! node-major and in order within a node. The shard driver
//! ([`crate::shard::extract_source_observed`]) pulls one *wave* of
//! chunks per worker pool, extracts it, and drops the text before
//! pulling the next — peak resident log text is O(workers ×
//! target_bytes) regardless of corpus size.
//!
//! Three implementations cover every way the repo obtains logs:
//!
//! - [`InMemorySource`] — wraps an already-materialized
//!   `&[(NodeId, Vec<String>)]`; chunk boundaries reproduce
//!   [`crate::shard::plan_chunks`] exactly, so every existing in-memory
//!   entry point is a thin adapter over the streaming path.
//! - [`DirSource`] — buffered incremental reads of a log directory (one
//!   `.log` file per node), replacing whole-file `read_to_string` in
//!   `gpures analyze`.
//! - [`GeneratorSource`] — pulls rendered lines straight out of a
//!   campaign's lazy [`dr_faults::textgen`] streams, so
//!   `gpures campaign` writes a corpus it never holds.
//!
//! All three yield identical line content for identical underlying data;
//! the pipeline's results are bit-identical across sources, chunk sizes,
//! and worker counts (tier-1 tested).

use dr_faults::{CampaignOutput, NodeTextStream};
use dr_xid::{DataError, NodeId};
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::thread;

/// One unit of streamed log text: a run of consecutive lines from one
/// node's log. `node` indexes the source's [`LogSource::nodes`] slice.
#[derive(Clone, Debug)]
pub struct LogChunk<'a> {
    /// Index into [`LogSource::nodes`].
    pub node: usize,
    /// The chunk's lines (no trailing newlines).
    pub lines: Cow<'a, [String]>,
    /// Byte volume as counted on disk: line bytes plus one newline each.
    pub bytes: u64,
}

/// A pull-based stream of per-node log text in line-aligned chunks.
///
/// Contract: chunks arrive node-major (all of node 0's chunks, then all
/// of node 1's, …) and in line order within a node; every line of every
/// node is yielded exactly once. `next_chunk` returns chunks of at least
/// `target_bytes` (the final chunk of a node may be smaller, and chunks
/// never split a line), then `None` when the source is exhausted.
pub trait LogSource<'a> {
    /// The node ids this source covers, in emission order. Nodes with no
    /// lines are listed but yield no chunks.
    fn nodes(&self) -> &[NodeId];

    /// Pull the next chunk of roughly `target_bytes`, or `None` at end.
    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'a>>, DataError>;

    /// Total corpus size in bytes when cheaply known (sizes chunks to the
    /// worker pool); `None` for generative sources.
    fn total_bytes_hint(&self) -> Option<u64> {
        None
    }
}

/// [`LogSource`] over an already-materialized corpus. Chunks borrow the
/// underlying lines (no copy) and reproduce the boundaries
/// [`crate::shard::plan_chunks`] would plan, making the streaming path a
/// strict generalization of the in-memory one.
pub struct InMemorySource<'a> {
    logs: &'a [(NodeId, Vec<String>)],
    nodes: Vec<NodeId>,
    node: usize,
    line: usize,
}

impl<'a> InMemorySource<'a> {
    pub fn new(logs: &'a [(NodeId, Vec<String>)]) -> Self {
        InMemorySource {
            logs,
            nodes: logs.iter().map(|(n, _)| *n).collect(),
            node: 0,
            line: 0,
        }
    }
}

impl<'a> LogSource<'a> for InMemorySource<'a> {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'a>>, DataError> {
        let target = target_bytes.max(1);
        while self.node < self.logs.len() {
            let lines = &self.logs[self.node].1;
            if self.line >= lines.len() {
                self.node += 1;
                self.line = 0;
                continue;
            }
            let start = self.line;
            let mut acc = 0u64;
            while self.line < lines.len() {
                acc += lines[self.line].len() as u64 + 1;
                self.line += 1;
                if acc >= target {
                    break;
                }
            }
            return Ok(Some(LogChunk {
                node: self.node,
                lines: Cow::Borrowed(&lines[start..self.line]),
                bytes: acc,
            }));
        }
        Ok(None)
    }

    fn total_bytes_hint(&self) -> Option<u64> {
        Some(
            self.logs
                .iter()
                .flat_map(|(_, lines)| lines.iter())
                .map(|l| l.len() as u64 + 1)
                .sum(),
        )
    }
}

/// [`LogSource`] over a directory of per-node `.log` files (the layout
/// `dr_report::files::write_node_logs` produces: `<host><id>.log`, one
/// per node, sorted by path). Files are read incrementally through a
/// `BufReader` — at no point is a whole file resident.
pub struct DirSource {
    nodes: Vec<NodeId>,
    paths: Vec<PathBuf>,
    cur: usize,
    reader: Option<BufReader<File>>,
    total_bytes: u64,
}

fn io_err(path: &Path, e: std::io::Error) -> DataError {
    DataError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

/// Scan a directory of per-node log files: every `*.log`, sorted by
/// path, node id parsed from the digits of the file stem
/// (`gpub017.log` → 17). Returns the node ids, their paths (parallel
/// vectors), and the total on-disk byte count at scan time. Shared by
/// [`DirSource`] (one-shot batch reads) and [`crate::tail::TailSource`]
/// (live following), so both agree on which files constitute a corpus.
pub(crate) fn scan_log_dir(dir: &Path) -> Result<(Vec<NodeId>, Vec<PathBuf>, u64), DataError> {
    let entries = std::fs::read_dir(dir).map_err(|e| io_err(dir, e))?;
    let mut paths = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| io_err(dir, e))?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("log") {
            paths.push(path);
        }
    }
    paths.sort();
    let mut nodes = Vec::with_capacity(paths.len());
    let mut total_bytes = 0u64;
    for path in &paths {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default();
        let id = stem
            .trim_start_matches(|c: char| c.is_ascii_alphabetic())
            .parse::<u32>()
            .map_err(|e| DataError::Io {
                path: path.display().to_string(),
                message: format!("file name does not encode a node id: {e}"),
            })?;
        nodes.push(NodeId(id));
        total_bytes += std::fs::metadata(path).map_err(|e| io_err(path, e))?.len();
    }
    Ok((nodes, paths, total_bytes))
}

impl DirSource {
    /// Open a log directory: every `*.log` file, sorted by path, node id
    /// parsed from the digits of the file stem (`gpub017.log` → 17).
    pub fn open(dir: &Path) -> Result<DirSource, DataError> {
        let (nodes, paths, total_bytes) = scan_log_dir(dir)?;
        Ok(DirSource {
            nodes,
            paths,
            cur: 0,
            reader: None,
            total_bytes,
        })
    }
}

impl LogSource<'static> for DirSource {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'static>>, DataError> {
        let target = target_bytes.max(1);
        while self.cur < self.paths.len() {
            let path = &self.paths[self.cur];
            if self.reader.is_none() {
                let file = File::open(path).map_err(|e| io_err(path, e))?;
                self.reader = Some(BufReader::new(file));
            }
            let Some(reader) = self.reader.as_mut() else {
                continue;
            };
            let mut lines = Vec::new();
            let mut acc = 0u64;
            let mut eof = false;
            while acc < target {
                let mut buf = String::new();
                let n = reader.read_line(&mut buf).map_err(|e| io_err(path, e))?;
                if n == 0 {
                    eof = true;
                    break;
                }
                if buf.ends_with('\n') {
                    buf.pop();
                    if buf.ends_with('\r') {
                        buf.pop();
                    }
                }
                acc += buf.len() as u64 + 1;
                lines.push(buf);
            }
            if eof {
                self.reader = None;
            }
            if lines.is_empty() {
                // Empty file (or a final read that hit EOF immediately):
                // move on without emitting a zero-line chunk.
                if eof {
                    self.cur += 1;
                }
                continue;
            }
            let node = self.cur;
            if eof {
                self.cur += 1;
            }
            return Ok(Some(LogChunk {
                node,
                lines: Cow::Owned(lines),
                bytes: acc,
            }));
        }
        Ok(None)
    }

    fn total_bytes_hint(&self) -> Option<u64> {
        Some(self.total_bytes)
    }
}

/// [`LogSource`] that renders a campaign's syslog text on demand from
/// its lazy [`dr_faults::textgen`] streams — the corpus never exists in
/// memory. Pair with `CampaignConfig::defer_text` so the campaign skips
/// eager rendering entirely.
pub struct GeneratorSource<'a> {
    nodes: Vec<NodeId>,
    streams: Vec<NodeTextStream<'a>>,
    cur: usize,
}

impl<'a> GeneratorSource<'a> {
    /// Stream the text corpus of a finished campaign.
    pub fn from_campaign(out: &'a CampaignOutput) -> Self {
        let (nodes, streams) = out.text_streams().into_iter().unzip();
        GeneratorSource {
            nodes,
            streams,
            cur: 0,
        }
    }
}

impl<'a> LogSource<'static> for GeneratorSource<'a> {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'static>>, DataError> {
        let target = target_bytes.max(1);
        while self.cur < self.streams.len() {
            let stream = &mut self.streams[self.cur];
            let mut lines = Vec::new();
            let mut acc = 0u64;
            while acc < target {
                let Some(line) = stream.next() else { break };
                acc += line.len() as u64 + 1;
                lines.push(line);
            }
            if lines.is_empty() {
                self.cur += 1;
                continue;
            }
            return Ok(Some(LogChunk {
                node: self.cur,
                lines: Cow::Owned(lines),
                bytes: acc,
            }));
        }
        Ok(None)
    }
}

/// Drain a source into the materialized `(node, lines)` form. Nodes that
/// yielded no chunks still appear, with empty line vectors. This is the
/// batch adapter for callers that genuinely need the whole corpus (the
/// baseline differential oracle, tests).
pub fn collect_source<'s>(
    source: &mut dyn LogSource<'s>,
) -> Result<Vec<(NodeId, Vec<String>)>, DataError> {
    let mut out: Vec<(NodeId, Vec<String>)> =
        source.nodes().iter().map(|&n| (n, Vec::new())).collect();
    while let Some(chunk) = source.next_chunk(u64::MAX)? {
        let Some(slot) = out.get_mut(chunk.node) else {
            return Err(DataError::Io {
                path: format!("<stream node #{}>", chunk.node),
                message: "chunk node index out of range for the source's node list".to_string(),
            });
        };
        slot.1.extend(chunk.lines.into_owned());
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Wave prefetch: I/O-overlapped double buffering
// ---------------------------------------------------------------------------

/// One wave of chunks — what the shard driver extracts between source
/// pulls. `bytes` is the summed on-disk byte volume of the chunks.
#[derive(Debug)]
pub struct Wave<'a> {
    /// The wave's chunks, node-major and in source order.
    pub chunks: Vec<LogChunk<'a>>,
    /// Total byte volume across `chunks`.
    pub bytes: u64,
}

/// Pull one wave (chunks of ≈ `target` bytes until ≥ `budget` bytes are
/// gathered) from `source`; `None` once the source is exhausted. This is
/// the *single* definition of wave boundaries: the synchronous shard
/// driver and the [`Prefetcher`]'s I/O thread both call it, which is what
/// keeps their waves — and therefore the extracted results — bit-identical.
pub fn pull_wave<'s>(
    source: &mut dyn LogSource<'s>,
    target: u64,
    budget: u64,
) -> Result<Option<Wave<'s>>, DataError> {
    let mut chunks = Vec::new();
    let mut bytes = 0u64;
    while bytes < budget {
        let Some(chunk) = source.next_chunk(target)? else {
            break;
        };
        bytes += chunk.bytes;
        chunks.push(chunk);
    }
    if chunks.is_empty() {
        Ok(None)
    } else {
        Ok(Some(Wave { chunks, bytes }))
    }
}

/// Double-buffered wave prefetch over any [`LogSource`]: a dedicated I/O
/// thread pulls wave *N+1* while the caller's workers extract wave *N*.
///
/// The two sides meet at a rendezvous channel (`sync_channel(0)`), so the
/// producer can run at most one complete wave ahead of the consumer:
/// once wave *N+1* is assembled, `send` blocks until the consumer asks
/// for it. Peak resident log text is therefore bounded by the consumer's
/// held wave plus the producer's staged wave — ≤ 2 × the wave budget
/// (plus at most one chunk of overshoot per side, since a wave closes on
/// the first chunk that reaches the budget). The exact high-water mark is
/// tracked on a shared counter and exposed as
/// [`WaveRx::peak_resident_bytes`].
///
/// A mid-stream read failure is forwarded through the channel and
/// surfaces as `Err` from [`WaveRx::next_wave`] — never a panic — after
/// which the I/O thread exits. If the consumer stops early, dropping the
/// receiver unblocks the producer's `send` and the thread exits cleanly.
pub struct Prefetcher<'src, 's> {
    source: &'src mut (dyn LogSource<'s> + Send),
    target_bytes: u64,
    wave_budget: u64,
}

impl<'src, 's> Prefetcher<'src, 's> {
    /// Wrap `source` for prefetching with the given chunk-size target and
    /// per-wave byte budget (normally `target × workers`; see
    /// `shard::WaveConfig`).
    pub fn new(
        source: &'src mut (dyn LogSource<'s> + Send),
        target_bytes: u64,
        wave_budget: u64,
    ) -> Self {
        Prefetcher {
            source,
            target_bytes: target_bytes.max(1),
            wave_budget,
        }
    }

    /// Run `consumer` with a [`WaveRx`] yielding prefetched waves, while
    /// the I/O thread stays one wave ahead. Returns the consumer's value
    /// after the I/O thread has been joined.
    pub fn run<R>(self, consumer: impl FnOnce(&mut WaveRx<'s, '_>) -> R) -> R {
        let resident = AtomicU64::new(0);
        let high_water = AtomicU64::new(0);
        let Prefetcher {
            source,
            target_bytes,
            wave_budget,
        } = self;
        thread::scope(|scope| {
            // Capacity 0 = rendezvous: the producer parks inside `send`
            // holding exactly one finished wave. That parked wave is the
            // second buffer of the double buffer.
            let (tx, rx) = mpsc::sync_channel::<Result<Wave<'s>, DataError>>(0);
            let (resident_ref, high_ref) = (&resident, &high_water);
            scope.spawn(move || loop {
                match pull_wave(source, target_bytes, wave_budget) {
                    Ok(Some(wave)) => {
                        // Count the wave the moment its text is fully
                        // resident, before handing it over.
                        let now = resident_ref.fetch_add(wave.bytes, Ordering::SeqCst) + wave.bytes;
                        high_ref.fetch_max(now, Ordering::SeqCst);
                        if tx.send(Ok(wave)).is_err() {
                            break; // consumer hung up early
                        }
                    }
                    Ok(None) => break, // source exhausted; drop tx to signal end
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        break;
                    }
                }
            });
            let mut waves = WaveRx {
                rx,
                resident: &resident,
                high_water: &high_water,
                held: 0,
            };
            consumer(&mut waves)
        })
    }
}

/// Consumer handle to a running [`Prefetcher`]: yields waves and reports
/// the resident-text high-water mark across both buffer slots.
pub struct WaveRx<'s, 'p> {
    rx: mpsc::Receiver<Result<Wave<'s>, DataError>>,
    resident: &'p AtomicU64,
    high_water: &'p AtomicU64,
    held: u64,
}

impl<'s> WaveRx<'s, '_> {
    /// Receive the next wave, blocking until the I/O thread delivers one;
    /// `None` once the source is exhausted. The previously yielded wave
    /// must be dropped before calling again (the natural shape of a
    /// `while let` loop) — its bytes are retired from the resident count
    /// here.
    pub fn next_wave(&mut self) -> Result<Option<Wave<'s>>, DataError> {
        self.resident.fetch_sub(self.held, Ordering::SeqCst);
        self.held = 0;
        match self.rx.recv() {
            // The producer dropped its sender: clean end of stream.
            Err(mpsc::RecvError) => Ok(None),
            Ok(Ok(wave)) => {
                self.held = wave.bytes;
                Ok(Some(wave))
            }
            Ok(Err(e)) => Err(e),
        }
    }

    /// High-water mark, in bytes, of log text resident across the
    /// consumer-held wave and the producer-staged wave, over the life of
    /// the prefetch so far. Bounded by 2 × wave budget (+ one chunk of
    /// overshoot per side).
    pub fn peak_resident_bytes(&self) -> u64 {
        self.high_water.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<(NodeId, Vec<String>)> {
        vec![
            (
                NodeId(1),
                vec!["alpha".to_string(), "bravo line".to_string(), "c".to_string()],
            ),
            (NodeId(2), Vec::new()),
            (NodeId(5), vec!["delta".to_string(), "echo".to_string()]),
        ]
    }

    #[test]
    fn in_memory_chunks_match_plan_chunks_boundaries() {
        let logs = corpus();
        for target in [1u64, 7, 64, u64::MAX] {
            let plan = crate::shard::plan_chunks(&logs, target);
            let mut src = InMemorySource::new(&logs);
            let mut got = Vec::new();
            while let Some(c) = src.next_chunk(target).unwrap() {
                got.push((c.node, c.lines.len(), c.bytes));
            }
            let want: Vec<_> = plan
                .iter()
                .map(|c| (c.node, c.end - c.start, c.bytes))
                .collect();
            assert_eq!(got, want, "target {target}");
        }
    }

    #[test]
    fn collect_round_trips_including_empty_nodes() {
        let logs = corpus();
        let mut src = InMemorySource::new(&logs);
        assert_eq!(collect_source(&mut src).unwrap(), logs);
    }

    /// A source that yields `good` chunks of one line each, then fails.
    struct FailingSource {
        nodes: Vec<NodeId>,
        yielded: usize,
        good: usize,
    }

    impl LogSource<'static> for FailingSource {
        fn nodes(&self) -> &[NodeId] {
            &self.nodes
        }

        fn next_chunk(&mut self, _target: u64) -> Result<Option<LogChunk<'static>>, DataError> {
            if self.yielded >= self.good {
                return Err(DataError::Io {
                    path: "<failing-source>".to_string(),
                    message: "disk read failed mid-stream".to_string(),
                });
            }
            self.yielded += 1;
            Ok(Some(LogChunk {
                node: 0,
                lines: Cow::Owned(vec!["noise line".to_string()]),
                bytes: 11,
            }))
        }

        fn total_bytes_hint(&self) -> Option<u64> {
            None
        }
    }

    #[test]
    fn prefetcher_yields_the_same_waves_as_synchronous_pulls() {
        let logs = corpus();
        let (target, budget) = (6u64, 12u64);

        let mut sync_src = InMemorySource::new(&logs);
        let mut sync_waves: Vec<(usize, u64)> = Vec::new();
        while let Some(w) = pull_wave(&mut sync_src, target, budget).unwrap() {
            sync_waves.push((w.chunks.len(), w.bytes));
        }
        assert!(sync_waves.len() > 1, "corpus must span several waves");

        let mut src = InMemorySource::new(&logs);
        let pf_waves = Prefetcher::new(&mut src, target, budget).run(|rx| {
            let mut got = Vec::new();
            while let Some(w) = rx.next_wave().unwrap() {
                got.push((w.chunks.len(), w.bytes));
            }
            got
        });
        assert_eq!(pf_waves, sync_waves, "wave boundaries must be identical");
    }

    #[test]
    fn prefetcher_on_an_empty_source_yields_nothing() {
        let logs: Vec<(NodeId, Vec<String>)> = vec![];
        let mut src = InMemorySource::new(&logs);
        let n = Prefetcher::new(&mut src, 64, 128).run(|rx| {
            let mut n = 0;
            while let Some(_w) = rx.next_wave().unwrap() {
                n += 1;
            }
            n
        });
        assert_eq!(n, 0);
    }

    #[test]
    fn prefetcher_on_a_single_chunk_source_yields_one_wave() {
        let logs = vec![(NodeId(0), vec!["only line".to_string()])];
        let mut src = InMemorySource::new(&logs);
        let waves = Prefetcher::new(&mut src, 1 << 20, 8 << 20).run(|rx| {
            let mut got = Vec::new();
            while let Some(w) = rx.next_wave().unwrap() {
                got.push(w.chunks.len());
            }
            got
        });
        assert_eq!(waves, vec![1]);
    }

    #[test]
    fn prefetcher_propagates_mid_stream_errors_without_panicking() {
        let mut src = FailingSource {
            nodes: vec![NodeId(0)],
            yielded: 0,
            good: 3,
        };
        let err = Prefetcher::new(&mut src, 11, 22).run(|rx| loop {
            match rx.next_wave() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("source must fail before exhaustion"),
                Err(e) => break e,
            }
        });
        assert!(
            err.to_string().contains("disk read failed mid-stream"),
            "error must carry the source's message, got: {err}"
        );
    }

    #[test]
    fn prefetcher_consumer_may_stop_early_without_deadlock() {
        let logs = corpus();
        let mut src = InMemorySource::new(&logs);
        // Take a single wave and return: the producer is left blocked in
        // `send`; dropping the receiver must release it so `run` joins.
        let first = Prefetcher::new(&mut src, 6, 6).run(|rx| {
            rx.next_wave().unwrap().map(|w| w.bytes)
        });
        assert!(first.is_some());
    }

    #[test]
    fn prefetcher_peak_resident_never_exceeds_two_waves() {
        let logs = corpus();
        let (target, budget) = (6u64, 12u64);
        // Chunk overshoot: a chunk closes on the line that crosses the
        // target, a wave on the chunk that crosses the budget.
        let max_line = logs
            .iter()
            .flat_map(|(_, l)| l.iter())
            .map(|l| l.len() as u64 + 1)
            .max()
            .unwrap_or(0);
        let bound = 2 * (budget + target + max_line);
        let mut src = InMemorySource::new(&logs);
        let peak = Prefetcher::new(&mut src, target, budget).run(|rx| {
            while let Some(_w) = rx.next_wave().unwrap() {}
            rx.peak_resident_bytes()
        });
        assert!(peak > 0, "high-water mark must be recorded");
        assert!(
            peak <= bound,
            "peak {peak} exceeds the double-buffer bound {bound}"
        );
    }

    #[test]
    fn chunks_are_node_major_and_line_exact() {
        let logs = corpus();
        let mut src = InMemorySource::new(&logs);
        let mut last_node = 0usize;
        let mut all: Vec<Vec<String>> = vec![Vec::new(); logs.len()];
        while let Some(c) = src.next_chunk(6).unwrap() {
            assert!(c.node >= last_node, "chunks must be node-major");
            last_node = c.node;
            all[c.node].extend(c.lines.iter().cloned());
        }
        for (i, (_, lines)) in logs.iter().enumerate() {
            assert_eq!(&all[i], lines);
        }
    }
}
