//! Node unavailability and availability estimation (Fig. 9c, Section 5.4).

use dr_faults::DowntimeInterval;
use dr_stats::{Mtbe, SummaryStats};

/// Downtime statistics across the campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct DowntimeStats {
    /// Number of repair incidents.
    pub incidents: u64,
    /// Expected time to service a failed node, hours (paper: 0.3 h).
    pub mean_service_h: f64,
    /// Service-time distribution (hours).
    pub service: SummaryStats,
    /// Total node hours lost to downtime (paper: 5,700).
    pub total_lost_h: f64,
}

/// Summarize repair intervals.
pub fn downtime_stats(intervals: &[DowntimeInterval]) -> DowntimeStats {
    let hours: Vec<f64> = intervals
        .iter()
        .map(|d| d.duration().as_hours_f64())
        .collect();
    finish_downtime(&hours)
}

fn finish_downtime(hours: &[f64]) -> DowntimeStats {
    let service = SummaryStats::from_samples(hours);
    DowntimeStats {
        incidents: hours.len() as u64,
        mean_service_h: service.mean,
        service,
        total_lost_h: hours.iter().sum(),
    }
}

/// Incremental [`downtime_stats`]: service hours accrue one repair
/// interval at a time, in arrival order (the sums are float-order
/// sensitive), and `snapshot` runs the identical summary. This is the
/// one [`crate::engine::AnalysisEngine`] keyed on
/// [`DowntimeInterval`]s rather than coalesced errors.
#[derive(Clone, Debug, Default)]
pub struct DowntimeAcc {
    hours: Vec<f64>,
}

impl DowntimeAcc {
    pub fn new() -> Self {
        DowntimeAcc::default()
    }
}

impl crate::engine::AnalysisEngine<DowntimeInterval> for DowntimeAcc {
    type Snapshot = DowntimeStats;

    fn ingest(&mut self, interval: &DowntimeInterval) {
        self.hours.push(interval.duration().as_hours_f64());
    }

    fn snapshot(&self) -> DowntimeStats {
        finish_downtime(&self.hours)
    }
}

/// Availability from the measured node MTTF (taken conservatively as the
/// overall per-node MTBE, assuming every error interrupts the node — the
/// paper's assumption) and the measured MTTR.
pub fn availability(mtbe_per_node_h: f64, mttr_h: f64) -> f64 {
    Mtbe::availability(mtbe_per_node_h, mttr_h)
}

/// Downtime in minutes per day at a given availability.
pub fn downtime_minutes_per_day(availability: f64) -> f64 {
    (1.0 - availability) * 24.0 * 60.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{GpuId, NodeId, Timestamp, Xid};

    fn interval(start_s: u64, dur_s: u64) -> DowntimeInterval {
        DowntimeInterval {
            gpu: GpuId::at_slot(NodeId(1), 0),
            start: Timestamp::from_secs(start_s),
            end: Timestamp::from_secs(start_s + dur_s),
            cause: Xid::GspRpcTimeout,
        }
    }

    #[test]
    fn stats_from_intervals() {
        let intervals = vec![interval(0, 1_800), interval(10_000, 360)];
        let s = downtime_stats(&intervals);
        assert_eq!(s.incidents, 2);
        assert!((s.mean_service_h - 0.3).abs() < 1e-9);
        assert!((s.total_lost_h - 0.6).abs() < 1e-9);
    }

    #[test]
    fn paper_availability_numbers() {
        // MTTF 67 h, MTTR 0.3 h -> 99.5 %; 223 h -> 99.9 % (Section 5.5).
        let a = availability(67.0, 0.3);
        assert!((a - 0.9955).abs() < 5e-4);
        let b = availability(223.0, 0.3);
        assert!(b > 0.9985);
        // 99.5 % availability is ~7 minutes of downtime per day.
        let mins = downtime_minutes_per_day(a);
        assert!((mins - 6.4).abs() < 1.0, "minutes {mins}");
    }

    #[test]
    fn empty_intervals() {
        let s = downtime_stats(&[]);
        assert_eq!(s.incidents, 0);
        assert_eq!(s.total_lost_h, 0.0);
    }

    #[test]
    fn downtime_fold_matches_batch_exactly() {
        use crate::engine::AnalysisEngine;
        let intervals = vec![interval(0, 1_800), interval(10_000, 360), interval(20_000, 90)];
        let mut acc = DowntimeAcc::new();
        for iv in &intervals {
            acc.ingest(iv);
        }
        assert_eq!(acc.snapshot(), downtime_stats(&intervals));
        assert_eq!(DowntimeAcc::new().snapshot(), downtime_stats(&[]));
    }
}
