//! Incremental, fold-based analysis core.
//!
//! Every batch analysis in this crate (`stats`, `propagation`,
//! `job_impact`, `counterfactual`, `downtime`) is a pure function over a
//! fully-materialized slice — which means the pipeline can only answer
//! questions about corpora that have already ended. [`AnalysisEngine`]
//! recasts each pass as an *accumulator*: `ingest` one element at a
//! time, `snapshot` the answer whenever you want it. Folding a whole
//! corpus through an accumulator and snapshotting once is **bit-identical**
//! to the batch function on the same slice (tier-1 differential test):
//! each accumulator records exactly the per-group state the batch pass
//! would build on its first walk, in the same order, and `snapshot` runs
//! the same arithmetic in the same sequence.
//!
//! [`StudyEngine`] bundles one accumulator per study section and is what
//! [`crate::pipeline::StudyResults::from_coalesced`] folds through; the
//! live path (`crate::watch`) layers rolling-window accumulators on the
//! same trait.

use crate::coalesce::CoalescedError;
use crate::counterfactual::CounterfactualReport;
use crate::downtime::{availability, DowntimeAcc, DowntimeStats};
use crate::job_impact::{finish_job_impact, table3, JobImpactAnalysis, JobImpactConfig};
use crate::pipeline::{StudyConfig, StudyResults};
use crate::propagation::{finish_propagation, PropagationAnalysis};
use crate::stats::{CategoryMtbe, LostHours, Table1Row};
use dr_faults::DowntimeInterval;
use dr_obs::MetricsSink;
use dr_slurm::JobRecord;
use dr_stats::{Mtbe, SummaryStats};
use dr_xid::{Duration, GpuId, NodeId, Xid};
use std::collections::BTreeMap;

/// An incremental analysis pass: a fold over a stream of inputs
/// (coalesced errors by default) with a read-out that can be taken at
/// any point. Implementations must be deterministic functions of the
/// ingested sequence — never of wall-clock time or iteration luck — so
/// that folding a finished corpus reproduces the batch result exactly
/// and a live session converges to the batch answer when the stream
/// catches up.
pub trait AnalysisEngine<In = CoalescedError> {
    /// What [`AnalysisEngine::snapshot`] produces.
    type Snapshot;

    /// Fold one element into the accumulator.
    fn ingest(&mut self, input: &In);

    /// Read the current answer without disturbing the accumulator.
    fn snapshot(&self) -> Self::Snapshot;
}

/// Incremental [`crate::stats::table1`]: per-XID persistence samples in
/// arrival order, summarized on demand.
#[derive(Clone, Debug)]
pub struct Table1Acc {
    observation_hours: f64,
    node_count: u32,
    per_xid: BTreeMap<Xid, Vec<f64>>,
}

impl Table1Acc {
    pub fn new(observation_hours: f64, node_count: u32) -> Self {
        Table1Acc {
            observation_hours,
            node_count,
            per_xid: BTreeMap::new(),
        }
    }
}

impl AnalysisEngine for Table1Acc {
    type Snapshot = Vec<Table1Row>;

    fn ingest(&mut self, e: &CoalescedError) {
        self.per_xid
            .entry(e.xid)
            .or_default()
            .push(e.persistence().as_secs_f64());
    }

    fn snapshot(&self) -> Vec<Table1Row> {
        let mtbe = Mtbe::new(self.observation_hours, self.node_count);
        Xid::TABLE1
            .iter()
            .map(|&xid| {
                let persistences: &[f64] = self
                    .per_xid
                    .get(&xid)
                    .map(|v| v.as_slice())
                    .unwrap_or(&[]);
                let count = persistences.len() as u64;
                Table1Row {
                    xid,
                    count,
                    mtbe_system_h: mtbe.system_hours(count),
                    mtbe_per_node_h: mtbe.per_node_hours(count),
                    persistence: SummaryStats::from_samples(persistences),
                }
            })
            .collect()
    }
}

/// Incremental [`crate::stats::overall_mtbe`]: one characterized-error
/// counter.
#[derive(Clone, Debug)]
pub struct OverallMtbeAcc {
    observation_hours: f64,
    node_count: u32,
    count: u64,
}

impl OverallMtbeAcc {
    pub fn new(observation_hours: f64, node_count: u32) -> Self {
        OverallMtbeAcc {
            observation_hours,
            node_count,
            count: 0,
        }
    }
}

impl AnalysisEngine for OverallMtbeAcc {
    type Snapshot = (Option<f64>, Option<f64>);

    fn ingest(&mut self, e: &CoalescedError) {
        if e.xid.is_characterized() {
            self.count += 1;
        }
    }

    fn snapshot(&self) -> (Option<f64>, Option<f64>) {
        let mtbe = Mtbe::new(self.observation_hours, self.node_count);
        (mtbe.system_hours(self.count), mtbe.per_node_hours(self.count))
    }
}

/// Incremental [`crate::stats::category_mtbe`]: two class counters.
#[derive(Clone, Debug)]
pub struct CategoryMtbeAcc {
    observation_hours: f64,
    node_count: u32,
    hw_count: u64,
    mem_count: u64,
}

impl CategoryMtbeAcc {
    pub fn new(observation_hours: f64, node_count: u32) -> Self {
        CategoryMtbeAcc {
            observation_hours,
            node_count,
            hw_count: 0,
            mem_count: 0,
        }
    }
}

impl AnalysisEngine for CategoryMtbeAcc {
    type Snapshot = CategoryMtbe;

    fn ingest(&mut self, e: &CoalescedError) {
        let hardware = [
            Xid::GspRpcTimeout,
            Xid::PmuSpiError,
            Xid::NvlinkError,
            Xid::FallenOffBus,
        ];
        let memory = [Xid::DoubleBitEcc, Xid::RowRemapEvent, Xid::RowRemapFailure];
        if hardware.contains(&e.xid) {
            self.hw_count += 1;
        }
        if memory.contains(&e.xid) {
            self.mem_count += 1;
        }
    }

    fn snapshot(&self) -> CategoryMtbe {
        let mtbe = Mtbe::new(self.observation_hours, self.node_count);
        let hardware_per_node_h = mtbe.per_node_hours(self.hw_count);
        let memory_per_node_h = mtbe.per_node_hours(self.mem_count);
        let ratio = match (memory_per_node_h, hardware_per_node_h) {
            (Some(m), Some(h)) if h > 0.0 => Some(m / h),
            _ => None,
        };
        CategoryMtbe {
            hardware_per_node_h,
            memory_per_node_h,
            ratio,
        }
    }
}

/// Incremental [`crate::stats::lost_gpu_hours`]. Keeps both the per-XID
/// sample vectors (for the P95 thresholds) and the arrival sequence (for
/// the second walk), exactly as the batch pass iterates them.
#[derive(Clone, Debug, Default)]
pub struct LostHoursAcc {
    per_xid: BTreeMap<Xid, Vec<f64>>,
    sequence: Vec<(Xid, f64)>,
}

impl LostHoursAcc {
    pub fn new() -> Self {
        LostHoursAcc::default()
    }
}

impl AnalysisEngine for LostHoursAcc {
    type Snapshot = LostHours;

    fn ingest(&mut self, e: &CoalescedError) {
        let p = e.persistence().as_secs_f64();
        self.per_xid.entry(e.xid).or_default().push(p);
        self.sequence.push((e.xid, p));
    }

    fn snapshot(&self) -> LostHours {
        let thresholds: BTreeMap<Xid, f64> = self
            .per_xid
            .iter()
            .map(|(&xid, samples)| (xid, SummaryStats::from_samples(samples).p95))
            .collect();
        let mut total_s = 0.0;
        let mut tail_s = 0.0;
        for &(xid, p) in &self.sequence {
            total_s += p;
            if p > thresholds.get(&xid).copied().unwrap_or(f64::INFINITY) {
                tail_s += p;
            }
        }
        let total_h = total_s / 3_600.0;
        let beyond_p95_h = tail_s / 3_600.0;
        LostHours {
            total_h,
            beyond_p95_h,
            tail_share: if total_h > 0.0 {
                beyond_p95_h / total_h
            } else {
                0.0
            },
        }
    }
}

/// Incremental [`crate::propagation::analyze_with_spread_window`]. The
/// accumulator owns a copy of the error sequence plus the per-GPU and
/// per-node index lists the batch pass builds on its first walk (arrival
/// order — sorting by start happens inside the shared finish step), so
/// `snapshot` is exactly the batch analysis minus that first walk.
#[derive(Clone, Debug)]
pub struct PropagationAcc {
    window: Duration,
    spread_window: Duration,
    errors: Vec<CoalescedError>,
    by_gpu: BTreeMap<GpuId, Vec<usize>>,
    by_node: BTreeMap<NodeId, Vec<usize>>,
}

impl PropagationAcc {
    pub fn new(window: Duration) -> Self {
        Self::with_spread_window(window, Duration::from_secs(10))
    }

    pub fn with_spread_window(window: Duration, spread_window: Duration) -> Self {
        PropagationAcc {
            window,
            spread_window,
            errors: Vec::new(),
            by_gpu: BTreeMap::new(),
            by_node: BTreeMap::new(),
        }
    }
}

impl AnalysisEngine for PropagationAcc {
    type Snapshot = PropagationAnalysis;

    fn ingest(&mut self, e: &CoalescedError) {
        let i = self.errors.len();
        self.errors.push(*e);
        self.by_gpu.entry(e.gpu).or_default().push(i);
        self.by_node.entry(e.gpu.node).or_default().push(i);
    }

    fn snapshot(&self) -> PropagationAnalysis {
        finish_propagation(
            &self.errors,
            self.by_gpu.clone(),
            self.by_node.clone(),
            self.window,
            self.spread_window,
        )
    }
}

/// Incremental [`crate::job_impact::analyze_jobs`]: the per-GPU error
/// index accrues one error at a time; the per-job join runs at snapshot
/// via the shared finish step.
#[derive(Clone, Debug)]
pub struct JobImpactAcc<'a> {
    jobs: &'a [JobRecord],
    cfg: JobImpactConfig,
    by_gpu: BTreeMap<GpuId, Vec<CoalescedError>>,
}

impl<'a> JobImpactAcc<'a> {
    pub fn new(jobs: &'a [JobRecord], cfg: JobImpactConfig) -> Self {
        JobImpactAcc {
            jobs,
            cfg,
            by_gpu: BTreeMap::new(),
        }
    }
}

impl AnalysisEngine for JobImpactAcc<'_> {
    type Snapshot = JobImpactAnalysis;

    fn ingest(&mut self, e: &CoalescedError) {
        self.by_gpu.entry(e.gpu).or_default().push(*e);
    }

    fn snapshot(&self) -> JobImpactAnalysis {
        finish_job_impact(self.jobs, self.by_gpu.clone(), self.cfg)
    }
}

/// Incremental [`crate::counterfactual::counterfactual`]: the entire
/// what-if reduces to one `(XID, GPU) → count` table over characterized
/// errors — baseline, offender, and hardened counts are all sums over
/// it, so ingest is a single map increment.
#[derive(Clone, Debug)]
pub struct CounterfactualAcc {
    observation_hours: f64,
    node_count: u32,
    per_xid_gpu: BTreeMap<(Xid, GpuId), u64>,
}

impl CounterfactualAcc {
    pub fn new(observation_hours: f64, node_count: u32) -> Self {
        CounterfactualAcc {
            observation_hours,
            node_count,
            per_xid_gpu: BTreeMap::new(),
        }
    }

    /// The report at an explicit mean-time-to-repair (the batch pass's
    /// `mttr_h` argument). The trait [`AnalysisEngine::snapshot`] uses
    /// the 0.3 h paper default.
    pub fn snapshot_with_mttr(&self, mttr_h: f64) -> CounterfactualReport {
        let mtbe = Mtbe::new(self.observation_hours, self.node_count);
        let baseline_count: u64 = self.per_xid_gpu.values().sum();
        let baseline_mtbe_h = mtbe.per_node_hours(baseline_count).unwrap_or(f64::INFINITY);

        let mut offenders: Vec<(Xid, GpuId, u64)> = Vec::new();
        for &xid in &Xid::TABLE1 {
            if let Some((&(_, gpu), &count)) = self
                .per_xid_gpu
                .iter()
                .filter(|((x, _), _)| *x == xid)
                .max_by_key(|(_, &c)| c)
            {
                offenders.push((xid, gpu, count));
            }
        }
        let offender_count: u64 = offenders.iter().map(|&(_, _, c)| c).sum();
        let no_offender_count = baseline_count - offender_count;
        let no_offenders_mtbe_h = mtbe
            .per_node_hours(no_offender_count)
            .unwrap_or(f64::INFINITY);

        let peripheral = [Xid::GspRpcTimeout, Xid::PmuSpiError, Xid::NvlinkError];
        let hardened_count: u64 = self
            .per_xid_gpu
            .iter()
            .filter(|(&(xid, gpu), _)| {
                !offenders.iter().any(|&(ox, og, _)| ox == xid && og == gpu)
                    && !peripheral.contains(&xid)
            })
            .map(|(_, &c)| c)
            .sum();
        let hardened_mtbe_h = mtbe.per_node_hours(hardened_count).unwrap_or(f64::INFINITY);

        CounterfactualReport {
            baseline_mtbe_h,
            no_offenders_mtbe_h,
            hardened_mtbe_h,
            baseline_availability: Mtbe::availability(baseline_mtbe_h, mttr_h),
            hardened_availability: Mtbe::availability(hardened_mtbe_h, mttr_h),
            offenders,
        }
    }
}

impl AnalysisEngine for CounterfactualAcc {
    type Snapshot = CounterfactualReport;

    fn ingest(&mut self, e: &CoalescedError) {
        if e.xid.is_characterized() {
            *self.per_xid_gpu.entry((e.xid, e.gpu)).or_default() += 1;
        }
    }

    fn snapshot(&self) -> CounterfactualReport {
        self.snapshot_with_mttr(0.3)
    }
}

/// The full study as one fold: every batch section of
/// [`StudyResults`], each as its incremental accumulator.
/// [`StudyResults::from_coalesced`] constructs one of these, ingests the
/// corpus, and finishes; live sessions can snapshot mid-stream through
/// the individual accumulators.
#[derive(Clone, Debug)]
pub struct StudyEngine<'a> {
    config: StudyConfig,
    jobs: Option<&'a [JobRecord]>,
    downtime: Option<&'a [DowntimeInterval]>,
    table1: Table1Acc,
    overall: OverallMtbeAcc,
    category: CategoryMtbeAcc,
    lost: LostHoursAcc,
    propagation: PropagationAcc,
    counterfactual: CounterfactualAcc,
    job_impact: Option<JobImpactAcc<'a>>,
}

impl<'a> StudyEngine<'a> {
    pub fn new(
        config: StudyConfig,
        jobs: Option<&'a [JobRecord]>,
        downtime: Option<&'a [DowntimeInterval]>,
    ) -> Self {
        let (hours, nodes) = (config.observation_hours, config.node_count);
        StudyEngine {
            config,
            jobs,
            downtime,
            table1: Table1Acc::new(hours, nodes),
            overall: OverallMtbeAcc::new(hours, nodes),
            category: CategoryMtbeAcc::new(hours, nodes),
            lost: LostHoursAcc::new(),
            propagation: PropagationAcc::new(config.propagation_window),
            counterfactual: CounterfactualAcc::new(hours, nodes),
            job_impact: jobs.map(|j| JobImpactAcc::new(j, config.job_impact)),
        }
    }

    /// Fold one coalesced error into every section's accumulator.
    pub fn ingest(&mut self, e: &CoalescedError) {
        self.table1.ingest(e);
        self.overall.ingest(e);
        self.category.ingest(e);
        self.lost.ingest(e);
        self.propagation.ingest(e);
        self.counterfactual.ingest(e);
        if let Some(ji) = self.job_impact.as_mut() {
            ji.ingest(e);
        }
    }

    /// Snapshot every section into a [`StudyResults`] bundle. `coalesced`
    /// is the exact sequence that was ingested (the results carry it).
    pub fn finish(self, coalesced: Vec<CoalescedError>) -> StudyResults {
        self.finish_observed(coalesced, &MetricsSink::disabled())
    }

    /// [`StudyEngine::finish`] with per-section spans and counters on
    /// `sink`. Write-only: the results are bit-identical with any sink.
    pub fn finish_observed(
        self,
        coalesced: Vec<CoalescedError>,
        sink: &MetricsSink,
    ) -> StudyResults {
        use dr_obs::{Counter, Stage};
        let (t1, overall, cat, lost) = {
            let _span = sink.span(Stage::Stats, "tables");
            (
                self.table1.snapshot(),
                self.overall.snapshot(),
                self.category.snapshot(),
                self.lost.snapshot(),
            )
        };
        let prop = {
            let _span = sink.span(Stage::Propagation, "total");
            self.propagation.snapshot()
        };

        let (dt, cf, avail) = {
            let _span = sink.span(Stage::Stats, "downtime");
            let dt: Option<DowntimeStats> = self.downtime.map(|intervals| {
                let mut acc = DowntimeAcc::new();
                for iv in intervals {
                    acc.ingest(iv);
                }
                acc.snapshot()
            });
            let mttr = dt.as_ref().map(|d| d.mean_service_h).unwrap_or(0.3);
            let cf = self.counterfactual.snapshot_with_mttr(mttr);
            let avail = match (&dt, overall.1) {
                (Some(d), Some(mtbe)) => Some(availability(mtbe, d.mean_service_h)),
                _ => None,
            };
            (dt, cf, avail)
        };

        let (ji, t3) = {
            let _span = self.jobs.map(|_| sink.span(Stage::JobImpact, "total"));
            if let Some(j) = self.jobs {
                sink.add(Stage::JobImpact, Counter::Jobs, j.len() as u64);
            }
            let ji = self.job_impact.as_ref().map(|acc| acc.snapshot());
            (ji, self.jobs.map(table3))
        };

        StudyResults {
            config: self.config,
            table1: t1,
            overall_mtbe_h: overall,
            category_mtbe: cat,
            lost_hours: lost,
            propagation: prop,
            counterfactual: cf,
            job_impact: ji,
            table3: t3,
            downtime: dt,
            availability: avail,
            coalesced,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counterfactual::counterfactual;
    use crate::job_impact::analyze_jobs;
    use crate::propagation::analyze;
    use crate::stats::{category_mtbe, lost_gpu_hours, overall_mtbe, table1};
    use dr_slurm::JobState;
    use dr_xid::{ErrorDetail, Timestamp};

    fn err(xid: Xid, node: u32, slot: usize, at_s: u64, persist_s: u64) -> CoalescedError {
        let start = Timestamp::from_secs(at_s);
        CoalescedError {
            gpu: GpuId::at_slot(NodeId(node), slot),
            xid,
            detail: ErrorDetail::NONE,
            start,
            last: start + Duration::from_secs(persist_s),
            merged: 1,
        }
    }

    /// A mixed corpus with bursts, multiple nodes/GPUs, and every
    /// accumulator-relevant class represented.
    fn corpus() -> Vec<CoalescedError> {
        let mut v = Vec::new();
        for k in 0..40u64 {
            let xid = match k % 5 {
                0 => Xid::GspRpcTimeout,
                1 => Xid::MmuError,
                2 => Xid::NvlinkError,
                3 => Xid::DoubleBitEcc,
                _ => Xid::GraphicsEngineException,
            };
            v.push(err(xid, (k % 3) as u32 + 1, (k % 4) as usize, k * 50, k % 7));
        }
        // A same-GPU burst for propagation edges and an NVLink cascade.
        v.push(err(Xid::PmuSpiError, 1, 0, 3_000, 1));
        v.push(err(Xid::MmuError, 1, 0, 3_005, 1));
        v.push(err(Xid::NvlinkError, 2, 0, 4_000, 1));
        v.push(err(Xid::NvlinkError, 2, 1, 4_003, 1));
        v.sort_by_key(|e| (e.start, e.gpu, e.xid));
        v
    }

    fn fold<A: AnalysisEngine>(acc: &mut A, errors: &[CoalescedError]) {
        for e in errors {
            acc.ingest(e);
        }
    }

    #[test]
    fn table1_fold_matches_batch_exactly() {
        let errors = corpus();
        let mut acc = Table1Acc::new(1_000.0, 12);
        fold(&mut acc, &errors);
        assert_eq!(
            format!("{:?}", acc.snapshot()),
            format!("{:?}", table1(&errors, 1_000.0, 12))
        );
    }

    #[test]
    fn overall_and_category_folds_match_batch_exactly() {
        let errors = corpus();
        let mut overall = OverallMtbeAcc::new(1_000.0, 12);
        let mut cat = CategoryMtbeAcc::new(1_000.0, 12);
        fold(&mut overall, &errors);
        fold(&mut cat, &errors);
        assert_eq!(overall.snapshot(), overall_mtbe(&errors, 1_000.0, 12));
        assert_eq!(cat.snapshot(), category_mtbe(&errors, 1_000.0, 12));
    }

    #[test]
    fn lost_hours_fold_matches_batch_exactly() {
        let errors = corpus();
        let mut acc = LostHoursAcc::new();
        fold(&mut acc, &errors);
        assert_eq!(acc.snapshot(), lost_gpu_hours(&errors));
    }

    #[test]
    fn propagation_fold_matches_batch_exactly() {
        let errors = corpus();
        let mut acc = PropagationAcc::new(Duration::from_secs(60));
        fold(&mut acc, &errors);
        assert_eq!(
            format!("{:?}", acc.snapshot()),
            format!("{:?}", analyze(&errors, Duration::from_secs(60)))
        );
    }

    #[test]
    fn counterfactual_fold_matches_batch_exactly() {
        let errors = corpus();
        let mut acc = CounterfactualAcc::new(1_000.0, 12);
        fold(&mut acc, &errors);
        for mttr in [0.3, 1.7] {
            assert_eq!(
                acc.snapshot_with_mttr(mttr),
                counterfactual(&errors, 1_000.0, 12, mttr),
                "mttr {mttr}"
            );
        }
    }

    #[test]
    fn job_impact_fold_matches_batch_exactly() {
        let errors = corpus();
        let g = GpuId::at_slot(NodeId(1), 0);
        let jobs = vec![
            JobRecord {
                id: 0,
                gpus: vec![g],
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(3_010),
                state: JobState::GpuFailed,
                exit_code: 137,
                ml: true,
            },
            JobRecord {
                id: 1,
                gpus: vec![g],
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(10_000),
                state: JobState::Completed,
                exit_code: 0,
                ml: false,
            },
        ];
        let mut acc = JobImpactAcc::new(&jobs, JobImpactConfig::default());
        fold(&mut acc, &errors);
        assert_eq!(
            format!("{:?}", acc.snapshot()),
            format!("{:?}", analyze_jobs(&jobs, &errors, JobImpactConfig::default()))
        );
    }

    #[test]
    fn snapshot_is_non_destructive_and_monotone() {
        let errors = corpus();
        let mut acc = OverallMtbeAcc::new(1_000.0, 12);
        let (half, rest) = errors.split_at(errors.len() / 2);
        fold(&mut acc, half);
        let mid = acc.snapshot();
        assert_eq!(mid, acc.snapshot(), "snapshot must not disturb state");
        fold(&mut acc, rest);
        assert_eq!(acc.snapshot(), overall_mtbe(&errors, 1_000.0, 12));
    }

    #[test]
    fn study_engine_fold_matches_batch_study_results() {
        let errors = corpus();
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 12);
        let mut engine = StudyEngine::new(cfg, None, None);
        for e in &errors {
            engine.ingest(e);
        }
        let folded = engine.finish(errors.clone());
        let batch = StudyResults::from_coalesced(errors, None, None, cfg);
        assert_eq!(format!("{folded:?}"), format!("{batch:?}"));
    }
}
