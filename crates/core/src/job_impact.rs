//! Job-level fault analysis (Section 5, Tables 2–3, Figures 9a/9b).
//!
//! Jobs are classified **GPU-failed** when they exited non-zero and a GPU
//! error occurred on one of their allocated GPUs within a twenty-second
//! window before the failure time. Every error within the window is
//! considered responsible, and Table 2 reports, per XID, how many jobs
//! encountered the error at all versus how many died with it.

use crate::coalesce::CoalescedError;
use dr_slurm::{JobRecord, JobState};
use dr_stats::{quantile_sorted, Histogram};
use dr_xid::{Duration, GpuId, Xid};
use std::collections::{BTreeMap, BTreeSet};

/// One row of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Table2Row {
    pub xid: Xid,
    /// Jobs that encountered this XID during their run and GPU-failed.
    pub gpu_failed_jobs: u64,
    /// Jobs that encountered this XID during their run.
    pub jobs_encountering: u64,
}

impl Table2Row {
    /// Failure probability given the XID (Table 2's last column).
    pub fn failure_probability(&self) -> f64 {
        if self.jobs_encountering == 0 {
            0.0
        } else {
            self.gpu_failed_jobs as f64 / self.jobs_encountering as f64
        }
    }
}

/// One row of Table 3 (recomputed from the accounting table).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table3Row {
    pub min_gpus: u16,
    pub max_gpus: u16,
    pub count: u64,
    pub share: f64,
    pub elapsed_mean_min: f64,
    pub elapsed_p50_min: f64,
    pub elapsed_p99_min: f64,
    pub ml_gpu_hours_k: f64,
    pub non_ml_gpu_hours_k: f64,
}

/// Binned elapsed-time distribution for Figure 9a and error-count
/// relation for Figure 9b.
#[derive(Clone, Debug)]
pub struct ElapsedDistributions {
    /// Completed-job elapsed histogram (minutes).
    pub completed: Histogram,
    /// GPU-failed-job elapsed histogram (minutes).
    pub gpu_failed: Histogram,
    /// (elapsed minutes, errors encountered) samples for completed jobs
    /// that saw at least one error.
    pub errors_vs_duration_completed: Vec<(f64, u32)>,
    /// Same for GPU-failed jobs.
    pub errors_vs_duration_failed: Vec<(f64, u32)>,
}

/// The full Section 5 analysis output.
#[derive(Clone, Debug)]
pub struct JobImpactAnalysis {
    pub table2: Vec<Table2Row>,
    /// Total GPU-failed jobs (the paper's 4,322).
    pub gpu_failed_total: u64,
    pub completed: u64,
    pub failed_any: u64,
    pub success_rate: f64,
    /// GPU hours consumed by GPU-failed jobs (wasted compute).
    pub lost_gpu_hours: f64,
    pub distributions: ElapsedDistributions,
}

/// The ±window join described in Section 5.3.
#[derive(Clone, Copy, Debug)]
pub struct JobImpactConfig {
    /// The error-to-failure attribution window (20 s in the paper).
    pub join_window: Duration,
}

impl Default for JobImpactConfig {
    fn default() -> Self {
        JobImpactConfig {
            join_window: Duration::from_secs(20),
        }
    }
}

/// Correlate errors with jobs.
pub fn analyze_jobs(
    jobs: &[JobRecord],
    errors: &[CoalescedError],
    cfg: JobImpactConfig,
) -> JobImpactAnalysis {
    // Index: errors per GPU in input order (the finish step sorts by
    // start time). Owned copies — `CoalescedError` is `Copy` — so the
    // incremental accumulator can build the identical index one error
    // at a time without borrowing the corpus.
    let mut by_gpu: BTreeMap<GpuId, Vec<CoalescedError>> = BTreeMap::new();
    for e in errors {
        by_gpu.entry(e.gpu).or_default().push(*e);
    }
    finish_job_impact(jobs, by_gpu, cfg)
}

/// The shared back half of the job-impact join: takes the per-GPU error
/// index (arrival order — this function stable-sorts each list by start
/// time), so the batch front door above and the incremental
/// [`crate::engine::JobImpactAcc`] produce bit-identical results from
/// bit-identical state.
pub(crate) fn finish_job_impact(
    jobs: &[JobRecord],
    mut by_gpu: BTreeMap<GpuId, Vec<CoalescedError>>,
    cfg: JobImpactConfig,
) -> JobImpactAnalysis {
    for v in by_gpu.values_mut() {
        v.sort_by_key(|e| e.start);
    }

    let mut encountering: BTreeMap<Xid, BTreeSet<u64>> = BTreeMap::new();
    let mut failed_with: BTreeMap<Xid, BTreeSet<u64>> = BTreeMap::new();
    let mut gpu_failed_jobs: BTreeSet<u64> = BTreeSet::new();

    let mut completed = 0u64;
    let mut failed_any = 0u64;
    let mut lost_gpu_hours = 0.0;
    let mut dist = ElapsedDistributions {
        completed: Histogram::new(0.0, 6_000.0, 60),
        gpu_failed: Histogram::new(0.0, 6_000.0, 60),
        errors_vs_duration_completed: Vec::new(),
        errors_vs_duration_failed: Vec::new(),
    };

    for job in jobs {
        let elapsed_min = job.elapsed().as_secs_f64() / 60.0;
        let mut errors_seen = 0u32;
        let mut xids_seen: Vec<Xid> = Vec::new();
        let mut fatal_xids: Vec<Xid> = Vec::new();
        let fail_window_start = job.end.saturating_sub(cfg.join_window);

        for &g in &job.gpus {
            let Some(list) = by_gpu.get(&g) else {
                continue;
            };
            // All errors starting within [job.start, job.end].
            let lo = list.partition_point(|e| e.start < job.start);
            for e in &list[lo..] {
                if e.start > job.end {
                    break;
                }
                errors_seen += 1;
                if !xids_seen.contains(&e.xid) {
                    xids_seen.push(e.xid);
                }
                if e.start >= fail_window_start && !fatal_xids.contains(&e.xid) {
                    fatal_xids.push(e.xid);
                }
            }
        }

        for &x in &xids_seen {
            encountering.entry(x).or_default().insert(job.id);
        }

        let job_failed = job.exit_code != 0;
        // "GPU-failed": non-zero exit with an error inside the pre-failure
        // window. (The paper classifies from the accounting data alone,
        // without knowing the true cause — so user failures that happen to
        // coincide with an error are counted too, exactly as in the study.)
        let is_gpu_failed = job_failed && !fatal_xids.is_empty();
        if is_gpu_failed {
            gpu_failed_jobs.insert(job.id);
            lost_gpu_hours += job.gpu_hours();
            for &x in &fatal_xids {
                failed_with.entry(x).or_default().insert(job.id);
            }
            dist.gpu_failed.push(elapsed_min);
            if errors_seen > 0 {
                dist.errors_vs_duration_failed.push((elapsed_min, errors_seen));
            }
        } else {
            if job.state == JobState::Completed {
                completed += 1;
                dist.completed.push(elapsed_min);
                if errors_seen > 0 {
                    dist
                        .errors_vs_duration_completed
                        .push((elapsed_min, errors_seen));
                }
            }
        }
        if job_failed {
            failed_any += 1;
        }
    }

    // Table 2, ordered by GPU-failed count descending like the paper.
    let mut table2: Vec<Table2Row> = Xid::TABLE1
        .iter()
        .map(|&xid| Table2Row {
            xid,
            gpu_failed_jobs: failed_with.get(&xid).map(|s| s.len() as u64).unwrap_or(0),
            jobs_encountering: encountering.get(&xid).map(|s| s.len() as u64).unwrap_or(0),
        })
        .collect();
    table2.sort_by_key(|r| std::cmp::Reverse(r.gpu_failed_jobs));

    let total = jobs.len() as u64;
    JobImpactAnalysis {
        table2,
        gpu_failed_total: gpu_failed_jobs.len() as u64,
        completed,
        failed_any,
        success_rate: if total > 0 {
            1.0 - failed_any as f64 / total as f64
        } else {
            0.0
        },
        lost_gpu_hours,
        distributions: dist,
    }
}

/// Recompute Table 3 from the accounting table using the standard buckets.
pub fn table3(jobs: &[JobRecord]) -> Vec<Table3Row> {
    let buckets: [(u16, u16); 8] = [
        (1, 1),
        (2, 4),
        (5, 8),
        (9, 32),
        (33, 64),
        (65, 128),
        (129, 256),
        (257, u16::MAX),
    ];
    let total = jobs.len().max(1) as f64;
    buckets
        .iter()
        .map(|&(lo, hi)| {
            let mut elapsed: Vec<f64> = Vec::new();
            let mut ml_h = 0.0;
            let mut non_ml_h = 0.0;
            for j in jobs {
                let n = j.gpu_count() as u16;
                if n < lo || n > hi {
                    continue;
                }
                elapsed.push(j.elapsed().as_secs_f64() / 60.0);
                if j.ml {
                    ml_h += j.gpu_hours();
                } else {
                    non_ml_h += j.gpu_hours();
                }
            }
            elapsed.sort_by(f64::total_cmp);
            let count = elapsed.len() as u64;
            let mean = if count > 0 {
                elapsed.iter().sum::<f64>() / count as f64
            } else {
                0.0
            };
            Table3Row {
                min_gpus: lo,
                max_gpus: hi,
                count,
                share: count as f64 / total,
                elapsed_mean_min: mean,
                elapsed_p50_min: quantile_sorted(&elapsed, 0.5).unwrap_or(0.0),
                elapsed_p99_min: quantile_sorted(&elapsed, 0.99).unwrap_or(0.0),
                ml_gpu_hours_k: ml_h / 1_000.0,
                non_ml_gpu_hours_k: non_ml_h / 1_000.0,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{ErrorDetail, NodeId, Timestamp};

    fn gpu(node: u32, slot: usize) -> GpuId {
        GpuId::at_slot(NodeId(node), slot)
    }

    fn job(id: u64, g: GpuId, start_s: u64, end_s: u64, exit: i32, state: JobState) -> JobRecord {
        JobRecord {
            id,
            gpus: vec![g],
            start: Timestamp::from_secs(start_s),
            end: Timestamp::from_secs(end_s),
            state,
            exit_code: exit,
            ml: false,
        }
    }

    fn err(g: GpuId, at_s: u64, xid: Xid) -> CoalescedError {
        CoalescedError {
            gpu: g,
            xid,
            detail: ErrorDetail::NONE,
            start: Timestamp::from_secs(at_s),
            last: Timestamp::from_secs(at_s),
            merged: 1,
        }
    }

    #[test]
    fn gpu_failed_classification_needs_window_hit() {
        let g = gpu(1, 0);
        let jobs = vec![
            // Dies 5 s after the error: GPU-failed.
            job(0, g, 0, 1_005, 137, JobState::GpuFailed),
            // Error mid-run but exits cleanly much later: encountered only.
            job(1, g, 2_000, 9_000, 0, JobState::Completed),
            // Fails with no error nearby: not GPU-failed.
            job(2, g, 20_000, 21_000, 1, JobState::UserFailed),
        ];
        let errors = vec![err(g, 1_000, Xid::GspRpcTimeout), err(g, 2_500, Xid::MmuError)];
        let a = analyze_jobs(&jobs, &errors, JobImpactConfig::default());
        assert_eq!(a.gpu_failed_total, 1);
        let gsp = a.table2.iter().find(|r| r.xid == Xid::GspRpcTimeout).unwrap();
        assert_eq!(gsp.jobs_encountering, 1);
        assert_eq!(gsp.gpu_failed_jobs, 1);
        assert_eq!(gsp.failure_probability(), 1.0);
        let mmu = a.table2.iter().find(|r| r.xid == Xid::MmuError).unwrap();
        assert_eq!(mmu.jobs_encountering, 1);
        assert_eq!(mmu.gpu_failed_jobs, 0);
        assert_eq!(mmu.failure_probability(), 0.0);
    }

    #[test]
    fn error_after_job_end_is_not_encountered() {
        let g = gpu(1, 0);
        let jobs = vec![job(0, g, 0, 100, 0, JobState::Completed)];
        let errors = vec![err(g, 150, Xid::MmuError)];
        let a = analyze_jobs(&jobs, &errors, JobImpactConfig::default());
        let mmu = a.table2.iter().find(|r| r.xid == Xid::MmuError).unwrap();
        assert_eq!(mmu.jobs_encountering, 0);
    }

    #[test]
    fn multiple_errors_in_window_all_blamed() {
        let g = gpu(1, 0);
        let jobs = vec![job(0, g, 0, 1_010, 139, JobState::GpuFailed)];
        let errors = vec![
            err(g, 1_000, Xid::NvlinkError),
            err(g, 1_005, Xid::MmuError),
        ];
        let a = analyze_jobs(&jobs, &errors, JobImpactConfig::default());
        assert_eq!(a.gpu_failed_total, 1);
        for xid in [Xid::NvlinkError, Xid::MmuError] {
            let row = a.table2.iter().find(|r| r.xid == xid).unwrap();
            assert_eq!(row.gpu_failed_jobs, 1, "{xid}");
        }
    }

    #[test]
    fn coincidental_user_failure_counts_as_gpu_failed() {
        // The paper's classifier cannot see the true cause: a user failure
        // within 20 s of an unrelated error is attributed to the GPU.
        let g = gpu(1, 0);
        let jobs = vec![job(0, g, 0, 1_010, 1, JobState::UserFailed)];
        let errors = vec![err(g, 1_000, Xid::MmuError)];
        let a = analyze_jobs(&jobs, &errors, JobImpactConfig::default());
        assert_eq!(a.gpu_failed_total, 1);
    }

    #[test]
    fn success_rate_and_lost_hours() {
        let g = gpu(1, 0);
        let jobs = vec![
            job(0, g, 0, 3_600, 0, JobState::Completed),
            job(1, g, 0, 7_210, 137, JobState::GpuFailed),
        ];
        let errors = vec![err(g, 7_200, Xid::GspRpcTimeout)];
        let a = analyze_jobs(&jobs, &errors, JobImpactConfig::default());
        assert_eq!(a.completed, 1);
        assert_eq!(a.failed_any, 1);
        assert!((a.success_rate - 0.5).abs() < 1e-9);
        assert!((a.lost_gpu_hours - 7_210.0 / 3_600.0).abs() < 1e-9);
    }

    #[test]
    fn table3_buckets_and_hours() {
        let g = gpu(1, 0);
        let mut jobs = vec![
            job(0, g, 0, 3_600, 0, JobState::Completed),
            job(1, g, 0, 7_200, 0, JobState::Completed),
        ];
        jobs[1].gpus = vec![gpu(1, 0), gpu(1, 1), gpu(1, 2)];
        jobs[1].ml = true;
        let t3 = table3(&jobs);
        assert_eq!(t3[0].count, 1); // 1-GPU bucket
        assert_eq!(t3[1].count, 1); // 2-4 bucket
        assert!((t3[0].share - 0.5).abs() < 1e-9);
        assert!((t3[0].elapsed_mean_min - 60.0).abs() < 1e-9);
        assert!((t3[1].ml_gpu_hours_k - 3.0 * 2.0 / 1_000.0).abs() < 1e-9);
        assert_eq!(t3[1].non_ml_gpu_hours_k, 0.0);
        assert_eq!(t3[7].count, 0);
    }

    #[test]
    fn distributions_are_populated() {
        let g = gpu(1, 0);
        let jobs = vec![
            job(0, g, 0, 60_000, 0, JobState::Completed),
            job(1, g, 0, 1_010, 139, JobState::GpuFailed),
        ];
        let errors = vec![err(g, 1_000, Xid::NvlinkError)];
        let a = analyze_jobs(&jobs, &errors, JobImpactConfig::default());
        assert_eq!(a.distributions.completed.count(), 1);
        assert_eq!(a.distributions.gpu_failed.count(), 1);
        assert_eq!(a.distributions.errors_vs_duration_failed.len(), 1);
        // The long completed job also saw the error mid-run.
        assert_eq!(a.distributions.errors_vs_duration_completed.len(), 1);
    }
}
