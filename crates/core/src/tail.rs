//! Live log following: a [`LogSource`] that tails growing files.
//!
//! The batch sources read a corpus that has already ended. A monitoring
//! deployment (`gpures watch`) instead follows per-node syslog files
//! *while they grow*, surviving log rotation and process restarts:
//!
//! - **Growth** — each poll re-opens a file, seeks to the saved offset,
//!   and consumes only complete (`\n`-terminated) lines; a partially
//!   written final line stays on disk for the next poll.
//! - **Rotation** — a changed inode (Unix) or a file shrinking below the
//!   saved offset means the path was rotated or truncated; the cursor
//!   resets to byte 0 of the new file.
//! - **Restarts** — [`TailSource::checkpoint`] renders the cursor state
//!   as text (`<ino> <offset> <path>` per line) and
//!   [`TailSource::open_with_checkpoint`] restores it, so a restarted
//!   watcher resumes where it stopped instead of re-ingesting history.
//!
//! **Contract note:** for the batch sources, `Ok(None)` from
//! [`LogSource::next_chunk`] means *exhausted forever*. A tailed file is
//! never exhausted — here `Ok(None)` means **caught up for now**: every
//! complete line currently on disk has been yielded, and the caller
//! decides when to poll again (the crate never sleeps or reads a clock;
//! pacing lives in the binary).

use crate::source::{scan_log_dir, LogChunk, LogSource};
use dr_xid::{DataError, NodeId};
use std::borrow::Cow;
use std::fs::File;
use std::io::{BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Follow cursor for one per-node log file.
#[derive(Clone, Debug, PartialEq, Eq)]
struct TailCursor {
    path: PathBuf,
    /// Inode of the file the offset refers to; `None` until first read
    /// (and always `None` on non-Unix hosts, where rotation is detected
    /// by shrinkage only).
    ino: Option<u64>,
    /// Byte offset of the first unconsumed byte.
    offset: u64,
}

fn tail_err(path: &Path, e: std::io::Error) -> DataError {
    DataError::Tail {
        path: path.display().to_string(),
        message: e.to_string(),
    }
}

fn ckpt_err(path: &Path, message: String) -> DataError {
    DataError::Checkpoint {
        path: path.display().to_string(),
        message,
    }
}

#[cfg(unix)]
fn inode_of(meta: &std::fs::Metadata) -> Option<u64> {
    use std::os::unix::fs::MetadataExt;
    Some(meta.ino())
}

#[cfg(not(unix))]
fn inode_of(_meta: &std::fs::Metadata) -> Option<u64> {
    None
}

/// [`LogSource`] that follows a directory of growing per-node `.log`
/// files (same layout as [`crate::source::DirSource`]). `Ok(None)` means
/// caught up, not finished — see the module docs.
#[derive(Debug)]
pub struct TailSource {
    nodes: Vec<NodeId>,
    cursors: Vec<TailCursor>,
    /// Round-robin start index so one chatty node cannot starve others.
    next: usize,
}

impl TailSource {
    /// Start following a log directory from the **end is not assumed**:
    /// cursors begin at byte 0, so an initial drain replays the full
    /// history (what `gpures watch --follow off` relies on).
    pub fn open(dir: &Path) -> Result<TailSource, DataError> {
        let (nodes, paths, _) = scan_log_dir(dir)?;
        let cursors = paths
            .into_iter()
            .map(|path| TailCursor {
                path,
                ino: None,
                offset: 0,
            })
            .collect();
        Ok(TailSource {
            nodes,
            cursors,
            next: 0,
        })
    }

    /// [`TailSource::open`], then restore any cursors recorded in the
    /// checkpoint file. A missing checkpoint file is a fresh start, not
    /// an error; a malformed one is [`DataError::Checkpoint`]. Entries
    /// whose path is no longer in the directory are ignored; files that
    /// rotated while the watcher was down are caught on the first poll
    /// (inode mismatch) and re-read from byte 0.
    pub fn open_with_checkpoint(dir: &Path, ckpt: &Path) -> Result<TailSource, DataError> {
        let mut source = TailSource::open(dir)?;
        let file = match File::open(ckpt) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(source),
            Err(e) => return Err(ckpt_err(ckpt, e.to_string())),
        };
        let mut reader = BufReader::new(file);
        let mut lineno = 0usize;
        loop {
            let mut line = String::new();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| ckpt_err(ckpt, e.to_string()))?;
            if n == 0 {
                break;
            }
            lineno += 1;
            let line = line.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, ' ');
            let (ino, offset, path) = match (parts.next(), parts.next(), parts.next()) {
                (Some(i), Some(o), Some(p)) => {
                    let ino = i.parse::<u64>().map_err(|e| {
                        ckpt_err(ckpt, format!("line {lineno}: bad inode `{i}`: {e}"))
                    })?;
                    let offset = o.parse::<u64>().map_err(|e| {
                        ckpt_err(ckpt, format!("line {lineno}: bad offset `{o}`: {e}"))
                    })?;
                    (ino, offset, p)
                }
                _ => {
                    return Err(ckpt_err(
                        ckpt,
                        format!("line {lineno}: expected `<ino> <offset> <path>`"),
                    ))
                }
            };
            if let Some(cur) = source
                .cursors
                .iter_mut()
                .find(|c| c.path.as_os_str() == std::ffi::OsStr::new(path))
            {
                cur.ino = (ino != 0).then_some(ino);
                cur.offset = offset;
            }
        }
        Ok(source)
    }

    /// Render the cursor state as checkpoint text: one
    /// `<ino> <offset> <path>` line per followed file (inode 0 when not
    /// yet known). Deterministic — follows the scanned path order.
    pub fn checkpoint(&self) -> String {
        let mut out = String::new();
        for c in &self.cursors {
            out.push_str(&format!(
                "{} {} {}\n",
                c.ino.unwrap_or(0),
                c.offset,
                c.path.display()
            ));
        }
        out
    }

    /// Write [`TailSource::checkpoint`] to `path` (best-effort atomic:
    /// temp file then rename).
    pub fn save_checkpoint(&self, path: &Path) -> Result<(), DataError> {
        let tmp = path.with_extension("tmp");
        let mut f = File::create(&tmp).map_err(|e| ckpt_err(&tmp, e.to_string()))?;
        f.write_all(self.checkpoint().as_bytes())
            .map_err(|e| ckpt_err(&tmp, e.to_string()))?;
        std::fs::rename(&tmp, path).map_err(|e| ckpt_err(path, e.to_string()))?;
        Ok(())
    }

    /// Poll one file: read complete lines from its saved offset up to
    /// roughly `target` bytes. Returns `None` when the file has no new
    /// complete lines (including "file currently absent mid-rotation").
    fn poll_file(&mut self, idx: usize, target: u64) -> Result<Option<LogChunk<'static>>, DataError> {
        let Some(cur) = self.cursors.get_mut(idx) else {
            return Ok(None);
        };
        let file = match File::open(&cur.path) {
            Ok(f) => f,
            // Mid-rotation gap: the old file is gone, the new one not yet
            // created. Keep the cursor; the next poll sees the new inode.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(tail_err(&cur.path, e)),
        };
        let meta = file.metadata().map_err(|e| tail_err(&cur.path, e))?;
        let ino = inode_of(&meta);
        let rotated = match (cur.ino, ino) {
            (Some(old), Some(new)) if old != new => true,
            _ => meta.len() < cur.offset,
        };
        if rotated {
            cur.offset = 0;
        }
        cur.ino = ino;
        if meta.len() <= cur.offset {
            return Ok(None);
        }

        let mut reader = BufReader::new(file);
        reader
            .seek(SeekFrom::Start(cur.offset))
            .map_err(|e| tail_err(&cur.path, e))?;
        let mut lines = Vec::new();
        let mut consumed = 0u64;
        let mut emitted = 0u64;
        while consumed < target {
            let mut buf = String::new();
            let n = reader
                .read_line(&mut buf)
                .map_err(|e| tail_err(&cur.path, e))?;
            if n == 0 {
                break;
            }
            if !buf.ends_with('\n') {
                // Incomplete trailing line: leave it for the next poll.
                break;
            }
            consumed += n as u64;
            buf.pop();
            if buf.ends_with('\r') {
                buf.pop();
            }
            emitted += buf.len() as u64 + 1;
            lines.push(buf);
        }
        if lines.is_empty() {
            return Ok(None);
        }
        cur.offset += consumed;
        Ok(Some(LogChunk {
            node: idx,
            lines: Cow::Owned(lines),
            bytes: emitted,
        }))
    }
}

impl LogSource<'static> for TailSource {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// `Ok(None)` = caught up for now (poll again later), not end of
    /// stream. Files are visited round-robin starting after the last one
    /// that produced data.
    fn next_chunk(&mut self, target_bytes: u64) -> Result<Option<LogChunk<'static>>, DataError> {
        let target = target_bytes.max(1);
        let n = self.cursors.len();
        for step in 0..n {
            let idx = (self.next + step) % n.max(1);
            if let Some(chunk) = self.poll_file(idx, target)? {
                self.next = (idx + 1) % n.max(1);
                return Ok(Some(chunk));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gpures_tail_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    fn chunk_lines(c: &LogChunk<'_>) -> Vec<String> {
        c.lines.iter().cloned().collect()
    }

    #[test]
    fn yields_only_complete_lines_and_then_catches_up() {
        let dir = tmp_dir("complete");
        let path = dir.join("gpub003.log");
        fs::write(&path, "alpha\nbeta\npartial").unwrap();
        let mut t = TailSource::open(&dir).unwrap();
        assert_eq!(t.nodes(), &[NodeId(3)]);
        let c = t.next_chunk(u64::MAX).unwrap().unwrap();
        assert_eq!(chunk_lines(&c), ["alpha", "beta"]);
        // The partial line is not consumed; we are caught up.
        assert!(t.next_chunk(u64::MAX).unwrap().is_none());
        // Completing the line makes it (and the next) visible.
        fs::write(&path, "alpha\nbeta\npartial-now-done\n").unwrap();
        let c = t.next_chunk(u64::MAX).unwrap().unwrap();
        assert_eq!(chunk_lines(&c), ["partial-now-done"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn follows_growth_across_polls() {
        let dir = tmp_dir("growth");
        let path = dir.join("gpub001.log");
        fs::write(&path, "one\n").unwrap();
        let mut t = TailSource::open(&dir).unwrap();
        assert_eq!(chunk_lines(&t.next_chunk(u64::MAX).unwrap().unwrap()), ["one"]);
        assert!(t.next_chunk(u64::MAX).unwrap().is_none());
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"two\nthree\n").unwrap();
        drop(f);
        let c = t.next_chunk(u64::MAX).unwrap().unwrap();
        assert_eq!(chunk_lines(&c), ["two", "three"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(unix)]
    #[test]
    fn detects_rotation_by_inode_and_rereads_from_zero() {
        let dir = tmp_dir("rotate");
        let path = dir.join("gpub002.log");
        fs::write(&path, "old-1\nold-2\n").unwrap();
        let mut t = TailSource::open(&dir).unwrap();
        assert_eq!(t.next_chunk(u64::MAX).unwrap().unwrap().lines.len(), 2);
        // Rotate: move the old file aside, create a fresh one at the path.
        fs::rename(&path, dir.join("gpub002.log.1")).unwrap();
        fs::write(&path, "new-1\n").unwrap();
        let c = t.next_chunk(u64::MAX).unwrap().unwrap();
        assert_eq!(chunk_lines(&c), ["new-1"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn detects_truncation_by_shrinkage() {
        let dir = tmp_dir("shrink");
        let path = dir.join("gpub004.log");
        fs::write(&path, "aaaa\nbbbb\ncccc\n").unwrap();
        let mut t = TailSource::open(&dir).unwrap();
        assert_eq!(t.next_chunk(u64::MAX).unwrap().unwrap().lines.len(), 3);
        fs::write(&path, "x\n").unwrap();
        let c = t.next_chunk(u64::MAX).unwrap().unwrap();
        assert_eq!(chunk_lines(&c), ["x"]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_and_resumes_midstream() {
        let dir = tmp_dir("ckpt");
        let path = dir.join("gpub005.log");
        fs::write(&path, "a\nb\nc\n").unwrap();
        let ckpt = dir.join("watch.ckpt");

        let mut t = TailSource::open(&dir).unwrap();
        assert_eq!(t.next_chunk(u64::MAX).unwrap().unwrap().lines.len(), 3);
        t.save_checkpoint(&ckpt).unwrap();

        // A restarted source resumes after `c`, not at the beginning.
        let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"d\n").unwrap();
        drop(f);
        let mut t2 = TailSource::open_with_checkpoint(&dir, &ckpt).unwrap();
        let c = t2.next_chunk(u64::MAX).unwrap().unwrap();
        assert_eq!(chunk_lines(&c), ["d"]);

        // Text format is the documented `<ino> <offset> <path>`.
        let text = t.checkpoint();
        let fields: Vec<&str> = text.split_whitespace().collect();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[1], "6"); // a\nb\nc\n
        assert!(fields[2].ends_with("gpub005.log"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_a_fresh_start_and_malformed_is_an_error() {
        let dir = tmp_dir("ckpt_err");
        fs::write(dir.join("gpub006.log"), "x\n").unwrap();
        assert!(TailSource::open_with_checkpoint(&dir, &dir.join("absent.ckpt")).is_ok());

        let bad = dir.join("bad.ckpt");
        fs::write(&bad, "only-two fields\n").unwrap();
        let err = TailSource::open_with_checkpoint(&dir, &bad).unwrap_err();
        match err {
            DataError::Checkpoint { path, message } => {
                assert!(path.ends_with("bad.ckpt"));
                assert!(message.contains("line 1"), "message: {message}");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn round_robin_interleaves_nodes() {
        let dir = tmp_dir("rr");
        fs::write(dir.join("gpub010.log"), "n10-a\nn10-b\n").unwrap();
        fs::write(dir.join("gpub011.log"), "n11-a\n").unwrap();
        let mut t = TailSource::open(&dir).unwrap();
        assert_eq!(t.nodes(), &[NodeId(10), NodeId(11)]);
        // Tiny target: one line per chunk; nodes alternate.
        let c1 = t.next_chunk(1).unwrap().unwrap();
        let c2 = t.next_chunk(1).unwrap().unwrap();
        let c3 = t.next_chunk(1).unwrap().unwrap();
        assert_eq!((c1.node, chunk_lines(&c1)), (0, vec!["n10-a".to_string()]));
        assert_eq!((c2.node, chunk_lines(&c2)), (1, vec!["n11-a".to_string()]));
        assert_eq!((c3.node, chunk_lines(&c3)), (0, vec!["n10-b".to_string()]));
        assert!(t.next_chunk(1).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}
