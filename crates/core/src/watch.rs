//! The live path: rolling-window accumulators and threshold alerts on
//! top of the fold-based analysis core.
//!
//! A [`WatchSession`] is the monitoring deployment of the paper's
//! methodology: it drains a [`LogSource`] poll by poll (typically a
//! [`crate::tail::TailSource`] following growing files), extracts
//! records with per-node scanner state, reorders them through a
//! [`WatermarkBuffer`], coalesces with the incremental
//! [`StreamCoalescer`], and folds every completed episode into
//! rolling-window [`AnalysisEngine`] accumulators (windowed MTBE,
//! per-offender rates, windowed propagation pressure) plus two
//! threshold alerts (emerging defective offender, XID-95 storm onset).
//!
//! **Determinism.** Everything here is keyed on *event time* — the
//! timestamps inside the log lines — never on a wall clock. Alerts
//! trigger on crossing edges of windowed counts, so replaying the same
//! corpus yields the same alerts at the same event times regardless of
//! poll cadence. Draining a completed corpus and calling
//! [`WatchSession::finish_observed`] produces a [`StudyResults`]
//! bit-identical to `gpures analyze` on the same logs, provided no
//! record was dropped as late ([`WatchSession::stats`]'s
//! `late_dropped == 0`).

use crate::coalesce::CoalescedError;
use crate::engine::AnalysisEngine;
use crate::pipeline::{StudyConfig, StudyResults};
use crate::source::LogSource;
use crate::stream::{StreamCoalescer, WatermarkBuffer};
use dr_logscan::XidExtractor;
use dr_obs::MetricsSink;
use dr_stats::Mtbe;
use dr_xid::{DataError, Duration, GpuId, NodeId, Timestamp, Xid};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Tuning for a live watch session. All windows and thresholds are in
/// event time.
#[derive(Clone, Copy, Debug)]
pub struct WatchConfig {
    /// The batch study configuration the session converges to.
    pub study: StudyConfig,
    /// Allowed out-of-orderness: records older than the latest event
    /// time seen minus this lateness are released; anything arriving
    /// even later is counted as dropped.
    pub lateness: Duration,
    /// Rolling window for the windowed MTBE / offender-rate /
    /// propagation accumulators.
    pub window: Duration,
    /// Windowed episode count at which a GPU becomes an emerging
    /// offender (crossing edge fires the alert).
    pub offender_threshold: u64,
    /// Windowed XID-95 (uncontained ECC) episode count at which a storm
    /// alert fires.
    pub storm_threshold: u64,
    /// Per-poll chunk size handed to the source.
    pub chunk_bytes: u64,
}

impl Default for WatchConfig {
    fn default() -> Self {
        WatchConfig {
            study: StudyConfig::ampere_study(),
            lateness: Duration::from_secs(120),
            window: Duration::from_secs(24 * 3600),
            offender_threshold: 5,
            storm_threshold: 3,
            chunk_bytes: 1 << 20,
        }
    }
}

/// Windowed overall MTBE: characterized episodes inside the rolling
/// window, normalized exactly like the batch overall MTBE but over the
/// window instead of the observation period.
#[derive(Clone, Debug)]
pub struct WindowedMtbeAcc {
    window: Duration,
    node_count: u32,
    starts: VecDeque<Timestamp>,
    latest: Option<Timestamp>,
}

/// [`WindowedMtbeAcc::snapshot`] output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WindowedMtbe {
    pub window_h: f64,
    /// Characterized episodes inside the window.
    pub count: u64,
    pub mtbe_system_h: Option<f64>,
    pub mtbe_per_node_h: Option<f64>,
}

impl WindowedMtbeAcc {
    pub fn new(window: Duration, node_count: u32) -> Self {
        WindowedMtbeAcc {
            window,
            node_count,
            starts: VecDeque::new(),
            latest: None,
        }
    }

    fn evict(&mut self) {
        if let Some(latest) = self.latest {
            let horizon = latest.saturating_sub(self.window);
            while self.starts.front().is_some_and(|&t| t < horizon) {
                self.starts.pop_front();
            }
        }
    }
}

impl AnalysisEngine for WindowedMtbeAcc {
    type Snapshot = WindowedMtbe;

    fn ingest(&mut self, e: &CoalescedError) {
        self.latest = Some(self.latest.map_or(e.start, |l| l.max(e.start)));
        if e.xid.is_characterized() {
            self.starts.push_back(e.start);
        }
        self.evict();
    }

    fn snapshot(&self) -> WindowedMtbe {
        let window_h = self.window.as_hours_f64();
        let count = self.starts.len() as u64;
        let (mtbe_system_h, mtbe_per_node_h) = if window_h > 0.0 && self.node_count > 0 {
            let mtbe = Mtbe::new(window_h, self.node_count);
            (mtbe.system_hours(count), mtbe.per_node_hours(count))
        } else {
            (None, None)
        };
        WindowedMtbe {
            window_h,
            count,
            mtbe_system_h,
            mtbe_per_node_h,
        }
    }
}

/// Windowed per-GPU episode rates: which devices are erroring *now*.
/// The counterpart of the counterfactual pass's top-offender ranking,
/// but over a rolling window so an emerging defective GPU surfaces
/// within one window instead of after 855 days.
#[derive(Clone, Debug, Default)]
pub struct OffenderRateAcc {
    window: Duration,
    latest: Option<Timestamp>,
    per_gpu: BTreeMap<GpuId, VecDeque<Timestamp>>,
}

/// One row of [`OffenderRateAcc::snapshot`]: a GPU's windowed activity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OffenderRate {
    pub gpu: GpuId,
    /// Episodes inside the window.
    pub count: u64,
    pub rate_per_h: f64,
}

impl OffenderRateAcc {
    pub fn new(window: Duration) -> Self {
        OffenderRateAcc {
            window,
            latest: None,
            per_gpu: BTreeMap::new(),
        }
    }

    /// Current windowed episode count for one GPU.
    pub fn count_for(&self, gpu: GpuId) -> u64 {
        self.per_gpu.get(&gpu).map_or(0, |q| q.len() as u64)
    }

    fn evict(&mut self) {
        if let Some(latest) = self.latest {
            let horizon = latest.saturating_sub(self.window);
            self.per_gpu.retain(|_, q| {
                while q.front().is_some_and(|&t| t < horizon) {
                    q.pop_front();
                }
                !q.is_empty()
            });
        }
    }
}

impl AnalysisEngine for OffenderRateAcc {
    type Snapshot = Vec<OffenderRate>;

    fn ingest(&mut self, e: &CoalescedError) {
        self.latest = Some(self.latest.map_or(e.start, |l| l.max(e.start)));
        self.per_gpu.entry(e.gpu).or_default().push_back(e.start);
        self.evict();
    }

    /// Active GPUs sorted by windowed count (desc), ties by id — a
    /// deterministic leaderboard.
    fn snapshot(&self) -> Vec<OffenderRate> {
        let hours = self.window.as_hours_f64();
        let mut rows: Vec<OffenderRate> = self
            .per_gpu
            .iter()
            .map(|(&gpu, q)| OffenderRate {
                gpu,
                count: q.len() as u64,
                rate_per_h: if hours > 0.0 {
                    q.len() as f64 / hours
                } else {
                    0.0
                },
            })
            .collect();
        rows.sort_by(|a, b| b.count.cmp(&a.count).then(a.gpu.cmp(&b.gpu)));
        rows
    }
}

/// Windowed propagation pressure: how many nodes currently have multiple
/// distinct GPUs erroring inside the window — the live early-warning
/// version of the batch inter-GPU propagation analysis.
#[derive(Clone, Debug, Default)]
pub struct WindowedPropagationAcc {
    window: Duration,
    latest: Option<Timestamp>,
    events: VecDeque<(Timestamp, NodeId, GpuId)>,
}

/// [`WindowedPropagationAcc::snapshot`] output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowedPropagation {
    /// Episodes inside the window.
    pub events: u64,
    /// Nodes with ≥ 2 distinct GPUs erroring inside the window.
    pub multi_gpu_nodes: u64,
}

impl WindowedPropagationAcc {
    pub fn new(window: Duration) -> Self {
        WindowedPropagationAcc {
            window,
            latest: None,
            events: VecDeque::new(),
        }
    }

    fn evict(&mut self) {
        if let Some(latest) = self.latest {
            let horizon = latest.saturating_sub(self.window);
            while self.events.front().is_some_and(|&(t, _, _)| t < horizon) {
                self.events.pop_front();
            }
        }
    }
}

impl AnalysisEngine for WindowedPropagationAcc {
    type Snapshot = WindowedPropagation;

    fn ingest(&mut self, e: &CoalescedError) {
        self.latest = Some(self.latest.map_or(e.start, |l| l.max(e.start)));
        self.events.push_back((e.start, e.gpu.node, e.gpu));
        self.evict();
    }

    fn snapshot(&self) -> WindowedPropagation {
        let mut per_node: BTreeMap<NodeId, BTreeSet<GpuId>> = BTreeMap::new();
        for &(_, node, gpu) in &self.events {
            per_node.entry(node).or_default().insert(gpu);
        }
        WindowedPropagation {
            events: self.events.len() as u64,
            multi_gpu_nodes: per_node.values().filter(|g| g.len() >= 2).count() as u64,
        }
    }
}

/// Why an alert fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertKind {
    /// A GPU's windowed episode count crossed the offender threshold.
    EmergingOffender { gpu: GpuId, count: u64 },
    /// Windowed XID-95 (uncontained ECC) episodes crossed the storm
    /// threshold — the onset signature Section 5 calls out on H100.
    Xid95Storm { count: u64 },
}

/// A threshold crossing, stamped with the *event time* of the episode
/// that caused it (never wall-clock time — replay gives identical
/// alerts).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Alert {
    pub at: Timestamp,
    pub kind: AlertKind,
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let secs = (self.at - Timestamp::EPOCH).as_secs_f64();
        match self.kind {
            AlertKind::EmergingOffender { gpu, count } => write!(
                f,
                "[t+{secs:.0}s] emerging offender: {gpu:?} reached {count} episodes in window"
            ),
            AlertKind::Xid95Storm { count } => write!(
                f,
                "[t+{secs:.0}s] XID-95 storm onset: {count} uncontained ECC episodes in window"
            ),
        }
    }
}

/// Cumulative session counters (also returned per poll as a delta).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchStats {
    pub polls: u64,
    pub bytes: u64,
    pub lines: u64,
    pub records: u64,
    /// Records released past the watermark into the coalescer.
    pub released: u64,
    /// Completed episodes folded into the accumulators.
    pub episodes: u64,
    /// Records dropped for arriving behind the released watermark; the
    /// session converges to the batch answer iff this stays 0.
    pub late_dropped: u64,
}

/// Point-in-time view of the live accumulators.
#[derive(Clone, Debug)]
pub struct WatchSnapshot {
    /// Latest event time folded so far.
    pub as_of: Option<Timestamp>,
    pub stats: WatchStats,
    /// Records still held back by the watermark.
    pub pending: u64,
    /// Episodes currently open in the coalescer.
    pub open_episodes: u64,
    pub windowed_mtbe: WindowedMtbe,
    pub offenders: Vec<OffenderRate>,
    pub propagation: WindowedPropagation,
    pub alerts_total: u64,
}

/// XID-95 storm detector: a windowed count of uncontained-ECC episodes.
#[derive(Clone, Debug, Default)]
struct StormAcc {
    window: Duration,
    latest: Option<Timestamp>,
    starts: VecDeque<Timestamp>,
}

impl StormAcc {
    fn new(window: Duration) -> Self {
        StormAcc {
            window,
            latest: None,
            starts: VecDeque::new(),
        }
    }

    fn count(&self) -> u64 {
        self.starts.len() as u64
    }

    fn ingest(&mut self, e: &CoalescedError) {
        self.latest = Some(self.latest.map_or(e.start, |l| l.max(e.start)));
        if e.xid == Xid::UncontainedEcc {
            self.starts.push_back(e.start);
        }
        if let Some(latest) = self.latest {
            let horizon = latest.saturating_sub(self.window);
            while self.starts.front().is_some_and(|&t| t < horizon) {
                self.starts.pop_front();
            }
        }
    }
}

/// A live analysis session over a polled [`LogSource`].
pub struct WatchSession {
    cfg: WatchConfig,
    /// One extractor per source node: syslog year inference is serial
    /// per node, so each node's lines must flow through its own scanner.
    extractors: Vec<XidExtractor>,
    buffer: WatermarkBuffer,
    coalescer: StreamCoalescer,
    /// Every completed episode, in completion order (the final results
    /// re-sort into batch order).
    episodes: Vec<CoalescedError>,
    windowed_mtbe: WindowedMtbeAcc,
    offenders: OffenderRateAcc,
    propagation: WindowedPropagationAcc,
    storm: StormAcc,
    alerts: Vec<Alert>,
    /// Alerts already handed out by [`WatchSession::take_new_alerts`].
    alerts_emitted: usize,
    latest_event: Option<Timestamp>,
    stats: WatchStats,
}

impl WatchSession {
    pub fn new(cfg: WatchConfig) -> Self {
        WatchSession {
            extractors: Vec::new(),
            buffer: WatermarkBuffer::new(cfg.lateness),
            coalescer: StreamCoalescer::new(cfg.study.coalesce),
            episodes: Vec::new(),
            windowed_mtbe: WindowedMtbeAcc::new(cfg.window, cfg.study.node_count),
            offenders: OffenderRateAcc::new(cfg.window),
            propagation: WindowedPropagationAcc::new(cfg.window),
            storm: StormAcc::new(cfg.window),
            alerts: Vec::new(),
            alerts_emitted: 0,
            latest_event: None,
            stats: WatchStats::default(),
            cfg,
        }
    }

    /// One poll cycle: pull chunks until the source reports caught-up
    /// (`Ok(None)`), extract, reorder through the watermark, coalesce,
    /// and fold completed episodes into the rolling accumulators.
    /// Returns this cycle's delta; cumulative totals live in
    /// [`WatchSession::stats`]. Purely event-time driven — the cycle
    /// does the same thing no matter when or how often it runs.
    pub fn run_observed<'s>(
        &mut self,
        source: &mut dyn LogSource<'s>,
        sink: &MetricsSink,
    ) -> Result<WatchStats, DataError> {
        use dr_obs::{Counter, Stage};
        let n_nodes = source.nodes().len();
        while self.extractors.len() < n_nodes {
            self.extractors.push(XidExtractor::new());
        }
        let mut delta = WatchStats {
            polls: 1,
            ..WatchStats::default()
        };
        {
            let _span = sink.span(Stage::Extract, "poll");
            while let Some(chunk) = source.next_chunk(self.cfg.chunk_bytes)? {
                delta.lines += chunk.lines.len() as u64;
                delta.bytes += chunk.bytes;
                let Some(ex) = self.extractors.get_mut(chunk.node) else {
                    continue;
                };
                let recs = ex.extract_all(chunk.lines.iter().map(|s| s.as_str()));
                delta.records += recs.len() as u64;
                for r in recs {
                    self.buffer.push(r);
                }
            }
        }
        sink.add(Stage::Extract, Counter::Bytes, delta.bytes);
        sink.add(Stage::Extract, Counter::Lines, delta.lines);
        sink.add(Stage::Extract, Counter::Records, delta.records);

        let released = self.buffer.drain_ready();
        delta.released = released.len() as u64;
        for r in &released {
            let closed = self.coalescer.push(r);
            for e in closed {
                self.observe_episode(e);
                delta.episodes += 1;
            }
        }
        sink.add(Stage::Coalesce, Counter::Records, delta.released);
        sink.add(Stage::Coalesce, Counter::Episodes, delta.episodes);

        delta.late_dropped = self.buffer.late_dropped() - self.stats.late_dropped;
        self.stats.polls += delta.polls;
        self.stats.bytes += delta.bytes;
        self.stats.lines += delta.lines;
        self.stats.records += delta.records;
        self.stats.released += delta.released;
        self.stats.episodes += delta.episodes;
        self.stats.late_dropped += delta.late_dropped;
        Ok(delta)
    }

    fn observe_episode(&mut self, e: CoalescedError) {
        self.latest_event = Some(self.latest_event.map_or(e.last, |l| l.max(e.last)));
        self.windowed_mtbe.ingest(&e);
        self.propagation.ingest(&e);

        let prev = self.offenders.count_for(e.gpu);
        self.offenders.ingest(&e);
        let count = self.offenders.count_for(e.gpu);
        if prev < self.cfg.offender_threshold && count >= self.cfg.offender_threshold {
            self.alerts.push(Alert {
                at: e.start,
                kind: AlertKind::EmergingOffender { gpu: e.gpu, count },
            });
        }

        let prev_storm = self.storm.count();
        self.storm.ingest(&e);
        let storm = self.storm.count();
        if prev_storm < self.cfg.storm_threshold && storm >= self.cfg.storm_threshold {
            self.alerts.push(Alert {
                at: e.start,
                kind: AlertKind::Xid95Storm { count: storm },
            });
        }

        self.episodes.push(e);
    }

    /// Cumulative counters.
    pub fn stats(&self) -> WatchStats {
        self.stats
    }

    /// Every alert fired so far, in firing order.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Alerts fired since the last call (for appending to an alert log).
    pub fn take_new_alerts(&mut self) -> Vec<Alert> {
        let new = self.alerts.get(self.alerts_emitted..).unwrap_or(&[]).to_vec();
        self.alerts_emitted = self.alerts.len();
        new
    }

    /// Current rolling-window view.
    pub fn snapshot(&self) -> WatchSnapshot {
        WatchSnapshot {
            as_of: self.latest_event,
            stats: self.stats,
            pending: self.buffer.pending_len() as u64,
            open_episodes: self.coalescer.open_count() as u64,
            windowed_mtbe: self.windowed_mtbe.snapshot(),
            offenders: self.offenders.snapshot(),
            propagation: self.propagation.snapshot(),
            alerts_total: self.alerts.len() as u64,
        }
    }

    /// End of stream: flush the watermark buffer and close every open
    /// episode, folding the remnants through the rolling accumulators
    /// and alert detectors. Afterwards [`WatchSession::snapshot`] and
    /// [`WatchSession::alerts`] reflect the complete corpus — call this
    /// (or check `take_new_alerts` after it) before dropping a session,
    /// or threshold crossings inside the final open episodes are never
    /// surfaced. Idempotent.
    pub fn drain(&mut self) {
        for r in self.buffer.flush() {
            let closed = self.coalescer.push(&r);
            for e in closed {
                self.observe_episode(e);
            }
        }
        let coalescer = std::mem::replace(
            &mut self.coalescer,
            StreamCoalescer::new(self.cfg.study.coalesce),
        );
        for e in coalescer.finish() {
            self.observe_episode(e);
        }
    }

    /// End of session: [`WatchSession::drain`], then fold the complete
    /// episode set — re-sorted into batch order — through the
    /// incremental [`crate::engine::StudyEngine`]. Over a completed
    /// corpus with `late_dropped == 0` the result is bit-identical to
    /// `gpures analyze` on the same logs.
    pub fn finish_observed(mut self, sink: &MetricsSink) -> StudyResults {
        self.drain();
        let mut episodes = std::mem::take(&mut self.episodes);
        episodes.sort_by_key(|e| (e.start, e.gpu, e.xid, e.detail));
        StudyResults::from_coalesced_observed(episodes, None, None, self.cfg.study, sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::InMemorySource;

    fn line(secs: u64, node: u32, slot: usize, xid: Xid) -> String {
        dr_xid::syslog::format_line(
            &dr_xid::ErrorRecord::new(
                Timestamp::from_secs(secs),
                GpuId::at_slot(NodeId(node), slot),
                xid,
                dr_xid::ErrorDetail::new(1, 2),
            ),
            100,
        )
    }

    fn ep(secs: u64, node: u32, slot: usize, xid: Xid) -> CoalescedError {
        let start = Timestamp::from_secs(secs);
        CoalescedError {
            gpu: GpuId::at_slot(NodeId(node), slot),
            xid,
            detail: dr_xid::ErrorDetail::NONE,
            start,
            last: start,
            merged: 1,
        }
    }

    #[test]
    fn windowed_mtbe_counts_only_inside_the_window() {
        let mut acc = WindowedMtbeAcc::new(Duration::from_secs(3600), 4);
        acc.ingest(&ep(0, 1, 0, Xid::MmuError));
        acc.ingest(&ep(100, 1, 0, Xid::MmuError));
        assert_eq!(acc.snapshot().count, 2);
        // 2 hours later, both originals have aged out.
        acc.ingest(&ep(7_200, 1, 0, Xid::MmuError));
        let s = acc.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.mtbe_system_h.is_some());
        // Job-induced XIDs are not characterized and never counted.
        acc.ingest(&ep(7_300, 1, 0, Xid::GraphicsEngineException));
        assert_eq!(acc.snapshot().count, 1);
    }

    #[test]
    fn offender_rates_rank_deterministically_and_age_out() {
        let mut acc = OffenderRateAcc::new(Duration::from_secs(1_000));
        for k in 0..3 {
            acc.ingest(&ep(10 + k, 1, 0, Xid::MmuError));
        }
        acc.ingest(&ep(20, 2, 0, Xid::MmuError));
        let rows = acc.snapshot();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].gpu, GpuId::at_slot(NodeId(1), 0));
        assert_eq!(rows[0].count, 3);
        assert_eq!(acc.count_for(GpuId::at_slot(NodeId(2), 0)), 1);
        // Far in the future the window is empty again.
        acc.ingest(&ep(10_000, 3, 0, Xid::MmuError));
        assert_eq!(acc.count_for(GpuId::at_slot(NodeId(1), 0)), 0);
        assert_eq!(acc.snapshot().len(), 1);
    }

    #[test]
    fn windowed_propagation_spots_multi_gpu_nodes() {
        let mut acc = WindowedPropagationAcc::new(Duration::from_secs(100));
        acc.ingest(&ep(0, 1, 0, Xid::NvlinkError));
        acc.ingest(&ep(5, 1, 1, Xid::NvlinkError));
        acc.ingest(&ep(7, 2, 0, Xid::MmuError));
        let s = acc.snapshot();
        assert_eq!(s.events, 3);
        assert_eq!(s.multi_gpu_nodes, 1);
    }

    #[test]
    fn emerging_offender_alert_fires_once_on_the_crossing_edge() {
        let cfg = WatchConfig {
            offender_threshold: 3,
            ..WatchConfig::default()
        };
        let mut session = WatchSession::new(cfg);
        for k in 0..5u64 {
            session.observe_episode(ep(100 * k, 7, 2, Xid::MmuError));
        }
        let alerts = session.take_new_alerts();
        assert_eq!(alerts.len(), 1, "one crossing, one alert: {alerts:?}");
        match alerts[0].kind {
            AlertKind::EmergingOffender { gpu, count } => {
                assert_eq!(gpu, GpuId::at_slot(NodeId(7), 2));
                assert_eq!(count, 3);
            }
            other => panic!("unexpected alert {other:?}"),
        }
        // Event-time stamp of the crossing episode, deterministic.
        assert_eq!(alerts[0].at, Timestamp::from_secs(200));
        assert!(session.take_new_alerts().is_empty());
    }

    #[test]
    fn xid95_storm_alert_fires_on_onset() {
        let cfg = WatchConfig {
            storm_threshold: 2,
            ..WatchConfig::default()
        };
        let mut session = WatchSession::new(cfg);
        session.observe_episode(ep(0, 1, 0, Xid::UncontainedEcc));
        session.observe_episode(ep(50, 2, 0, Xid::UncontainedEcc));
        let alerts = session.take_new_alerts();
        assert!(
            alerts
                .iter()
                .any(|a| matches!(a.kind, AlertKind::Xid95Storm { count: 2 })),
            "alerts: {alerts:?}"
        );
        let text = alerts
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join("\n");
        assert!(text.contains("XID-95 storm onset"));
        assert!(text.contains("[t+50s]"));
    }

    #[test]
    fn session_drains_a_source_and_converges_to_the_batch_pipeline() {
        // Two nodes, interleaved event times, with a same-identity burst
        // that must coalesce. The drained session's final StudyResults
        // must be Debug-identical to the batch pipeline on the same text.
        const DAY: u64 = 86_400;
        let logs: Vec<(NodeId, Vec<String>)> = vec![
            (
                NodeId(1),
                vec![
                    line(DAY + 10_800, 1, 0, Xid::FallenOffBus),
                    line(DAY + 10_802, 1, 0, Xid::FallenOffBus), // coalesces
                    line(DAY + 32_400, 1, 1, Xid::MmuError),
                ],
            ),
            (
                NodeId(2),
                vec![
                    line(DAY + 14_400, 2, 0, Xid::NvlinkError),
                    line(2 * DAY + 3_600, 2, 0, Xid::UncontainedEcc),
                ],
            ),
        ];
        let cfg = WatchConfig::default();
        let study = cfg.study;

        let mut session = WatchSession::new(cfg);
        let mut source = InMemorySource::new(&logs);
        let sink = MetricsSink::disabled();
        let delta = session.run_observed(&mut source, &sink).expect("drain");
        assert_eq!(delta.lines, 5);
        assert!(delta.records >= 4, "records: {}", delta.records);
        assert_eq!(session.stats().late_dropped, 0);
        let live = session.finish_observed(&sink);

        let (batch, _) = crate::pipeline::PipelineBuilder::new(study).run_text(&logs);
        assert_eq!(format!("{live:?}"), format!("{batch:?}"));
    }

    #[test]
    fn snapshot_reflects_progress_without_disturbing_state() {
        let mut session = WatchSession::new(WatchConfig::default());
        session.observe_episode(ep(10, 1, 0, Xid::MmuError));
        session.observe_episode(ep(20, 1, 0, Xid::DoubleBitEcc));
        let a = session.snapshot();
        let b = session.snapshot();
        assert_eq!(a.windowed_mtbe, b.windowed_mtbe);
        assert_eq!(a.offenders, b.offenders);
        assert_eq!(a.as_of, Some(Timestamp::from_secs(20)));
        assert_eq!(a.propagation.events, 2);
    }
}
