//! Columnar `ErrorRecord` store: parse once, re-analyze in milliseconds.
//!
//! Stage I extraction is deterministic and its output never changes, yet
//! every re-coalesce at a different Δt or propagation-window ablation
//! used to re-pay the full regex cost over raw text. This module is the
//! write-once binary layer that breaks that loop (ROADMAP item 5): the
//! extract pass tees its per-node record streams into a compact
//! struct-of-arrays file, and later runs replay from it through
//! [`PipelineBuilder::run_record_source`](crate::pipeline::PipelineBuilder::run_record_source)
//! with bit-identical `StudyResults`.
//!
//! ## File layout (version 1)
//!
//! ```text
//! header   8 B   magic "GRCS" · version u16 LE · flags u16 LE (0)
//! blocks   …     struct-of-arrays payloads (dr_xid::colenc::encode_block)
//! footer   …     node table · GpuId dict · Xid dict · block index
//! trailer  20 B  footer offset u64 LE · footer FNV-1a64 u64 LE · magic
//! ```
//!
//! Each block holds the records of **one node, in stream order**, at
//! most [`MAX_BLOCK_RECORDS`] per block. The footer's block index keeps
//! `{node, byte range, record count, min/max timestamp, checksum}` per
//! block, so a reader can *skip* blocks by node or time range without
//! decoding them — and so every block is independently checksummed.
//! Dictionaries live in the footer (not the header) because the writer
//! streams blocks out as extraction produces them; the tables are only
//! complete at [`RecordStoreWriter::finish`].
//!
//! Reading follows the same pulled-iteration contract as
//! [`LogSource`](crate::source::LogSource): [`RecordSource::next_batch`]
//! yields one decoded block at a time (seek + exact-length read — never
//! a whole-file slurp, which the stream-hygiene lint now also forbids
//! for `read_to_end`), so resident memory stays one block regardless of
//! store size. Truncation and corruption anywhere — header, blocks,
//! footer, trailer — surface as typed [`DataError::Store`] values,
//! never panics; the whole read path sits inside dr-lint's
//! panic-reachability closure.

use std::collections::BTreeSet;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

use dr_xid::colenc::{
    decode_block, decode_gpu, encode_block, encode_gpu, fnv1a64, read_varint, write_varint,
    RecordDict, GPU_ENTRY_BYTES,
};
use dr_xid::{DataError, ErrorRecord, GpuId, NodeId, Timestamp, Xid};

/// File magic: "GPU Resilience Columnar Store".
pub const STORE_MAGIC: [u8; 4] = *b"GRCS";
/// Current (and only) format version.
pub const STORE_VERSION: u16 = 1;
/// Header size: magic + version + flags.
pub const HEADER_BYTES: u64 = 8;
/// Trailer size: footer offset + footer checksum + magic.
pub const TRAILER_BYTES: u64 = 20;
/// Records per block cap: bounds both a reader batch and the
/// granularity of index-based block skipping.
pub const MAX_BLOCK_RECORDS: usize = 4096;

fn store_err(path: &str, message: impl Into<String>) -> DataError {
    DataError::Store {
        path: path.to_string(),
        message: message.into(),
    }
}

/// Map an I/O failure: unexpected EOF means the file is shorter than
/// its own metadata claims (truncation → [`DataError::Store`]); any
/// other kind is a filesystem problem ([`DataError::Io`]).
fn read_err(path: &str, what: &str, e: std::io::Error) -> DataError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        store_err(path, format!("truncated {what}"))
    } else {
        DataError::Io {
            path: path.to_string(),
            message: e.to_string(),
        }
    }
}

fn io_err(path: &str, e: std::io::Error) -> DataError {
    DataError::Io {
        path: path.to_string(),
        message: e.to_string(),
    }
}

/// One entry of the footer's block index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockMeta {
    /// Index into the store's node table.
    pub node_idx: usize,
    /// Byte offset of the block payload in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// Records in the block.
    pub count: u64,
    /// Smallest record timestamp in the block.
    pub min_at: Timestamp,
    /// Largest record timestamp in the block.
    pub max_at: Timestamp,
    /// FNV-1a 64 checksum of the payload bytes.
    pub checksum: u64,
}

/// What a completed write produced, for logs and benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreSummary {
    pub blocks: usize,
    pub records: u64,
    /// Total file size in bytes.
    pub bytes: u64,
    /// Distinct GPUs in the dictionary.
    pub gpus: usize,
    /// Distinct XIDs in the dictionary.
    pub xids: usize,
}

/// Streaming store writer: header first, blocks as they arrive,
/// dictionaries + index + trailer at [`RecordStoreWriter::finish`].
#[derive(Debug)]
pub struct RecordStoreWriter {
    out: BufWriter<File>,
    path: String,
    offset: u64,
    nodes: Vec<NodeId>,
    dict: RecordDict,
    blocks: Vec<BlockMeta>,
    records: u64,
}

impl RecordStoreWriter {
    /// Create `path` (truncating any existing file) and write the header.
    /// `nodes` fixes the node table; every appended block names its node
    /// by index into it.
    pub fn create(path: &Path, nodes: &[NodeId]) -> Result<RecordStoreWriter, DataError> {
        let display = path.display().to_string();
        let file = File::create(path).map_err(|e| io_err(&display, e))?;
        let mut out = BufWriter::new(file);
        out.write_all(&STORE_MAGIC)
            .and_then(|()| out.write_all(&STORE_VERSION.to_le_bytes()))
            .and_then(|()| out.write_all(&0u16.to_le_bytes()))
            .map_err(|e| io_err(&display, e))?;
        Ok(RecordStoreWriter {
            out,
            path: display,
            offset: HEADER_BYTES,
            nodes: nodes.to_vec(),
            dict: RecordDict::new(),
            blocks: Vec::new(),
            records: 0,
        })
    }

    /// Append one node's record stream, splitting it into blocks of at
    /// most [`MAX_BLOCK_RECORDS`]. Order is preserved exactly — the
    /// store is a faithful transcript of the extract output, including
    /// any non-monotonic stretches.
    pub fn append_node(&mut self, node_idx: usize, records: &[ErrorRecord]) -> Result<(), DataError> {
        if node_idx >= self.nodes.len() {
            return Err(store_err(
                &self.path,
                format!(
                    "node index {node_idx} out of range for {}-node table",
                    self.nodes.len()
                ),
            ));
        }
        for chunk in records.chunks(MAX_BLOCK_RECORDS) {
            let Some(first) = chunk.first() else {
                continue;
            };
            let (min_at, max_at) = chunk.iter().fold((first.at, first.at), |(lo, hi), r| {
                (lo.min(r.at), hi.max(r.at))
            });
            let payload = encode_block(chunk, &mut self.dict);
            self.out
                .write_all(&payload)
                .map_err(|e| io_err(&self.path, e))?;
            self.blocks.push(BlockMeta {
                node_idx,
                offset: self.offset,
                len: payload.len() as u64,
                count: chunk.len() as u64,
                min_at,
                max_at,
                checksum: fnv1a64(&payload),
            });
            self.offset += payload.len() as u64;
            self.records += chunk.len() as u64;
        }
        Ok(())
    }

    /// Serialize the footer (node table, dictionaries, block index) and
    /// trailer, then flush. The file is only a valid store once this
    /// returns `Ok`.
    pub fn finish(mut self) -> Result<StoreSummary, DataError> {
        let mut footer = Vec::new();
        write_varint(&mut footer, self.nodes.len() as u64);
        for n in &self.nodes {
            footer.extend_from_slice(&n.0.to_le_bytes());
        }
        write_varint(&mut footer, self.dict.gpus().len() as u64);
        for &g in self.dict.gpus() {
            encode_gpu(g, &mut footer);
        }
        write_varint(&mut footer, self.dict.xids().len() as u64);
        for &x in self.dict.xids() {
            footer.extend_from_slice(&x.code().to_le_bytes());
        }
        write_varint(&mut footer, self.blocks.len() as u64);
        for b in &self.blocks {
            write_varint(&mut footer, b.node_idx as u64);
            write_varint(&mut footer, b.offset);
            write_varint(&mut footer, b.len);
            write_varint(&mut footer, b.count);
            write_varint(&mut footer, b.min_at.as_micros());
            write_varint(&mut footer, b.max_at.as_micros());
            footer.extend_from_slice(&b.checksum.to_le_bytes());
        }

        self.out
            .write_all(&footer)
            .and_then(|()| self.out.write_all(&self.offset.to_le_bytes()))
            .and_then(|()| self.out.write_all(&fnv1a64(&footer).to_le_bytes()))
            .and_then(|()| self.out.write_all(&STORE_MAGIC))
            .and_then(|()| self.out.flush())
            .map_err(|e| io_err(&self.path, e))?;

        Ok(StoreSummary {
            blocks: self.blocks.len(),
            records: self.records,
            bytes: self.offset + footer.len() as u64 + TRAILER_BYTES,
            gpus: self.dict.gpus().len(),
            xids: self.dict.xids().len(),
        })
    }
}

/// Write a complete store from per-node record streams (one `Vec` per
/// entry of `nodes`, in the same order — the shape Stage I extraction
/// returns).
pub fn write_store(
    path: &Path,
    nodes: &[NodeId],
    per_node: &[Vec<ErrorRecord>],
) -> Result<StoreSummary, DataError> {
    if nodes.len() != per_node.len() {
        return Err(store_err(
            &path.display().to_string(),
            format!(
                "node table has {} entries but {} record streams were supplied",
                nodes.len(),
                per_node.len()
            ),
        ));
    }
    let mut writer = RecordStoreWriter::create(path, nodes)?;
    for (i, records) in per_node.iter().enumerate() {
        writer.append_node(i, records)?;
    }
    writer.finish()
}

/// Run the streaming extract pass over `source` and tee its per-node
/// record output into a store at `path`. One pass over the text; the
/// store is a byte-faithful transcript of what extraction produced.
pub fn extract_to_store<'s>(
    source: &mut dyn crate::source::LogSource<'s>,
    target_bytes: Option<u64>,
    path: &Path,
) -> Result<(StoreSummary, dr_logscan::ExtractStats), DataError> {
    let nodes = source.nodes().to_vec();
    let (per_node, stats) = crate::shard::extract_source(source, target_bytes)?;
    let summary = write_store(path, &nodes, &per_node)?;
    Ok((summary, stats))
}

/// Cursor over the footer byte buffer; every short read is a typed
/// truncation error naming the file.
struct FooterCursor<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a str,
}

impl<'a> FooterCursor<'a> {
    fn varint(&mut self, what: &str) -> Result<u64, DataError> {
        read_varint(self.buf, &mut self.pos)
            .ok_or_else(|| store_err(self.path, format!("truncated footer ({what})")))
    }

    /// A varint count whose entries occupy at least one byte each — so
    /// any count exceeding the remaining footer is corrupt, and it is
    /// safe to use as an allocation size.
    fn count(&mut self, what: &str) -> Result<usize, DataError> {
        let n = self.varint(what)?;
        let remaining = self.buf.len().saturating_sub(self.pos) as u64;
        usize::try_from(n)
            .ok()
            .filter(|&n| n as u64 <= remaining)
            .ok_or_else(|| store_err(self.path, format!("implausible footer {what} count {n}")))
    }

    fn bytes(&mut self, n: usize, what: &str) -> Result<&'a [u8], DataError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| store_err(self.path, format!("truncated footer ({what})")))?;
        let out = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| store_err(self.path, format!("truncated footer ({what})")))?;
        self.pos = end;
        Ok(out)
    }

    fn u64_le(&mut self, what: &str) -> Result<u64, DataError> {
        let b = self.bytes(8, what)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
}

/// An opened store's metadata: node table, dictionaries, and block
/// index, fully validated. Opening reads *only* header, trailer, and
/// footer — block payloads stay on disk until a
/// [`StoreRecordSource`] pulls them.
#[derive(Clone, Debug)]
pub struct RecordStore {
    path: String,
    nodes: Vec<NodeId>,
    gpus: Vec<GpuId>,
    xids: Vec<Xid>,
    blocks: Vec<BlockMeta>,
}

impl RecordStore {
    /// Open and validate a store file. Every malformation — short file,
    /// bad magic, unsupported version, truncated or checksum-failing
    /// footer, out-of-bounds block ranges — is a typed
    /// [`DataError::Store`].
    pub fn open(path: &Path) -> Result<RecordStore, DataError> {
        let display = path.display().to_string();
        let mut file = File::open(path).map_err(|e| io_err(&display, e))?;
        let len = file.metadata().map_err(|e| io_err(&display, e))?.len();
        if len < HEADER_BYTES + TRAILER_BYTES {
            return Err(store_err(
                &display,
                format!("{len}-byte file is too short to be a record store (empty or truncated)"),
            ));
        }

        let mut header = [0u8; HEADER_BYTES as usize];
        file.read_exact(&mut header)
            .map_err(|e| read_err(&display, "header", e))?;
        if header[..4] != STORE_MAGIC {
            return Err(store_err(&display, "bad magic (not a record store)"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != STORE_VERSION {
            return Err(store_err(
                &display,
                format!("unsupported store version {version} (this reader supports {STORE_VERSION})"),
            ));
        }

        let mut trailer = [0u8; TRAILER_BYTES as usize];
        file.seek(SeekFrom::End(-(TRAILER_BYTES as i64)))
            .and_then(|_| file.read_exact(&mut trailer))
            .map_err(|e| read_err(&display, "trailer", e))?;
        if trailer[16..20] != STORE_MAGIC {
            return Err(store_err(
                &display,
                "trailer magic missing (file truncated or not finished)",
            ));
        }
        let mut a = [0u8; 8];
        a.copy_from_slice(&trailer[..8]);
        let footer_offset = u64::from_le_bytes(a);
        a.copy_from_slice(&trailer[8..16]);
        let footer_checksum = u64::from_le_bytes(a);
        if footer_offset < HEADER_BYTES || footer_offset > len - TRAILER_BYTES {
            return Err(store_err(
                &display,
                format!("footer offset {footer_offset} out of bounds (file truncated?)"),
            ));
        }

        let footer_len = (len - TRAILER_BYTES - footer_offset) as usize;
        let mut footer = vec![0u8; footer_len];
        file.seek(SeekFrom::Start(footer_offset))
            .and_then(|_| file.read_exact(&mut footer))
            .map_err(|e| read_err(&display, "footer", e))?;
        if fnv1a64(&footer) != footer_checksum {
            return Err(store_err(&display, "footer checksum mismatch (corrupt index)"));
        }

        let mut cur = FooterCursor {
            buf: &footer,
            pos: 0,
            path: &display,
        };
        let n_nodes = cur.count("node table")?;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let b = cur.bytes(4, "node table")?;
            let mut a = [0u8; 4];
            a.copy_from_slice(b);
            nodes.push(NodeId(u32::from_le_bytes(a)));
        }
        let n_gpus = cur.count("gpu dictionary")?;
        let mut gpus = Vec::with_capacity(n_gpus);
        for _ in 0..n_gpus {
            let b = cur.bytes(GPU_ENTRY_BYTES, "gpu dictionary")?;
            let g = decode_gpu(b)
                .ok_or_else(|| store_err(&display, "truncated footer (gpu dictionary)"))?;
            gpus.push(g);
        }
        let n_xids = cur.count("xid dictionary")?;
        let mut xids = Vec::with_capacity(n_xids);
        for _ in 0..n_xids {
            let b = cur.bytes(2, "xid dictionary")?;
            let code = u16::from_le_bytes([*b.first().unwrap_or(&0), *b.get(1).unwrap_or(&0)]);
            let xid = Xid::from_code(code).ok_or_else(|| {
                store_err(&display, format!("unknown xid code {code} in dictionary"))
            })?;
            xids.push(xid);
        }
        let n_blocks = cur.count("block index")?;
        let mut blocks = Vec::with_capacity(n_blocks);
        for i in 0..n_blocks {
            let node_idx = cur.varint("block node")?;
            let offset = cur.varint("block offset")?;
            let blen = cur.varint("block length")?;
            let count = cur.varint("block count")?;
            let min_at = Timestamp::from_micros(cur.varint("block min time")?);
            let max_at = Timestamp::from_micros(cur.varint("block max time")?);
            let checksum = cur.u64_le("block checksum")?;
            let node_idx = usize::try_from(node_idx)
                .ok()
                .filter(|&n| n < nodes.len())
                .ok_or_else(|| {
                    store_err(&display, format!("block {i} names node {node_idx}, beyond the node table"))
                })?;
            if offset < HEADER_BYTES
                || blen == 0
                || offset.checked_add(blen).map_or(true, |end| end > footer_offset)
            {
                return Err(store_err(
                    &display,
                    format!("block {i} byte range {offset}+{blen} escapes the data region"),
                ));
            }
            blocks.push(BlockMeta {
                node_idx,
                offset,
                len: blen,
                count,
                min_at,
                max_at,
                checksum,
            });
        }
        if cur.pos != footer.len() {
            return Err(store_err(
                &display,
                format!("{} trailing bytes after footer", footer.len() - cur.pos),
            ));
        }

        Ok(RecordStore {
            path: display,
            nodes,
            gpus,
            xids,
            blocks,
        })
    }

    /// The node table, in store order (block `node` indices point here).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The block index, in file order.
    pub fn blocks(&self) -> &[BlockMeta] {
        &self.blocks
    }

    /// Total records across all blocks (from the index — no decoding).
    pub fn record_count(&self) -> u64 {
        self.blocks.iter().map(|b| b.count).sum()
    }

    /// Distinct GPUs in the dictionary.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// A pulled-iteration reader over the store's blocks. Opens its own
    /// file handle, so multiple readers can replay the same store.
    pub fn reader(&self, path: &Path) -> Result<StoreRecordSource<'_>, DataError> {
        let file = File::open(path).map_err(|e| io_err(&self.path, e))?;
        Ok(StoreRecordSource {
            store: self,
            file,
            next_block: 0,
            node_filter: None,
            time_filter: None,
            blocks_skipped: 0,
        })
    }
}

/// One decoded block of records, the unit of pulled iteration on the
/// record-replay path (the analogue of [`crate::source::LogChunk`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecordBatch {
    /// Index into [`RecordSource::nodes`].
    pub node: usize,
    /// The block's records, in stream order.
    pub records: Vec<ErrorRecord>,
    /// On-disk payload bytes this batch was decoded from (feeds the
    /// `peak_resident_bytes` gauge, mirroring `LogChunk::bytes`).
    pub bytes: u64,
}

/// The pulled-iteration contract for structured-record ingestion — the
/// `LogSource` of the replay path. Batches for one node arrive in
/// stream order; different nodes may interleave.
pub trait RecordSource {
    /// Node identity table; `RecordBatch::node` indexes into it.
    fn nodes(&self) -> &[NodeId];
    /// Pull the next batch, or `Ok(None)` at end of stream.
    fn next_batch(&mut self) -> Result<Option<RecordBatch>, DataError>;
    /// Total record count if cheaply known (for progress/preallocation).
    fn total_records_hint(&self) -> Option<u64> {
        None
    }
}

/// Block-at-a-time reader over an opened [`RecordStore`]: seek to the
/// indexed byte range, exact-length read, checksum, decode. Optional
/// node/time filters skip non-matching blocks **from the index alone**
/// — skipped blocks are never read off disk.
#[derive(Debug)]
pub struct StoreRecordSource<'a> {
    store: &'a RecordStore,
    file: File,
    next_block: usize,
    node_filter: Option<BTreeSet<usize>>,
    /// Half-open `[start, end)` on record timestamps.
    time_filter: Option<(Timestamp, Timestamp)>,
    blocks_skipped: u64,
}

impl StoreRecordSource<'_> {
    /// Restrict iteration to the given nodes. Unknown nodes are
    /// silently absent (their filter set is simply never matched).
    pub fn select_nodes(mut self, nodes: &[NodeId]) -> Self {
        let want: BTreeSet<usize> = self
            .store
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| nodes.contains(n))
            .map(|(i, _)| i)
            .collect();
        self.node_filter = Some(want);
        self
    }

    /// Restrict iteration to records with `start <= at < end`. Blocks
    /// wholly outside the range are skipped via the index; overlapping
    /// blocks are decoded and filtered record-by-record.
    pub fn select_time_range(mut self, start: Timestamp, end: Timestamp) -> Self {
        self.time_filter = Some((start, end));
        self
    }

    /// Blocks skipped by the index filters without being read/decoded.
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped
    }

    fn read_block(&mut self, i: usize, meta: BlockMeta) -> Result<Vec<ErrorRecord>, DataError> {
        let path = &self.store.path;
        let blen = usize::try_from(meta.len)
            .map_err(|_| store_err(path, format!("block {i} length {} overflows", meta.len)))?;
        let mut buf = vec![0u8; blen];
        self.file
            .seek(SeekFrom::Start(meta.offset))
            .and_then(|_| self.file.read_exact(&mut buf))
            .map_err(|e| read_err(path, &format!("block {i}"), e))?;
        if fnv1a64(&buf) != meta.checksum {
            return Err(store_err(path, format!("block {i} checksum mismatch (corrupt data)")));
        }
        let records = decode_block(&buf, &self.store.gpus, &self.store.xids, path)?;
        if records.len() as u64 != meta.count {
            return Err(store_err(
                path,
                format!(
                    "block {i} decoded {} records but the index promises {}",
                    records.len(),
                    meta.count
                ),
            ));
        }
        Ok(records)
    }
}

impl RecordSource for StoreRecordSource<'_> {
    fn nodes(&self) -> &[NodeId] {
        &self.store.nodes
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>, DataError> {
        loop {
            let i = self.next_block;
            let Some(&meta) = self.store.blocks.get(i) else {
                return Ok(None);
            };
            self.next_block += 1;

            if let Some(want) = &self.node_filter {
                if !want.contains(&meta.node_idx) {
                    self.blocks_skipped += 1;
                    continue;
                }
            }
            if let Some((start, end)) = self.time_filter {
                if meta.max_at < start || meta.min_at >= end {
                    self.blocks_skipped += 1;
                    continue;
                }
            }

            let mut records = self.read_block(i, meta)?;
            if let Some((start, end)) = self.time_filter {
                records.retain(|r| r.at >= start && r.at < end);
                if records.is_empty() {
                    continue;
                }
            }
            return Ok(Some(RecordBatch {
                node: meta.node_idx,
                records,
                bytes: meta.len,
            }));
        }
    }

    fn total_records_hint(&self) -> Option<u64> {
        if self.node_filter.is_none() && self.time_filter.is_none() {
            Some(self.store.record_count())
        } else {
            None
        }
    }
}

/// In-memory [`RecordSource`] over per-node record streams — the
/// `InMemorySource` analogue, for tests and callers that already hold
/// records.
#[derive(Clone, Debug)]
pub struct InMemoryRecordSource {
    nodes: Vec<NodeId>,
    per_node: Vec<Vec<ErrorRecord>>,
    next: usize,
}

impl InMemoryRecordSource {
    pub fn new(nodes: &[NodeId], per_node: &[Vec<ErrorRecord>]) -> InMemoryRecordSource {
        InMemoryRecordSource {
            nodes: nodes.to_vec(),
            per_node: per_node.to_vec(),
            next: 0,
        }
    }
}

impl RecordSource for InMemoryRecordSource {
    fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    fn next_batch(&mut self) -> Result<Option<RecordBatch>, DataError> {
        loop {
            let i = self.next;
            let Some(records) = self.per_node.get(i) else {
                return Ok(None);
            };
            self.next += 1;
            if records.is_empty() {
                continue;
            }
            return Ok(Some(RecordBatch {
                node: i,
                records: records.clone(),
                bytes: (records.len() * std::mem::size_of::<ErrorRecord>()) as u64,
            }));
        }
    }

    fn total_records_hint(&self) -> Option<u64> {
        Some(self.per_node.iter().map(|r| r.len() as u64).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{ErrorDetail, Xid};
    use std::path::PathBuf;

    fn rec(us: u64, node: u32, slot: usize, xid: Xid) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::from_micros(us),
            GpuId::at_slot(NodeId(node), slot),
            xid,
            ErrorDetail::new(1, 2),
        )
    }

    struct ScratchFile(PathBuf);
    impl ScratchFile {
        fn new(tag: &str) -> ScratchFile {
            ScratchFile(
                std::env::temp_dir()
                    .join(format!("gpures-store-{tag}-{}.bin", std::process::id())),
            )
        }
        fn path(&self) -> &Path {
            &self.0
        }
    }
    impl Drop for ScratchFile {
        fn drop(&mut self) {
            std::fs::remove_file(&self.0).ok();
        }
    }

    fn sample_streams() -> (Vec<NodeId>, Vec<Vec<ErrorRecord>>) {
        let nodes = vec![NodeId(3), NodeId(7), NodeId(12)];
        let per_node = vec![
            (0..10)
                .map(|k| rec(1_000_000 + k * 250_000, 3, (k % 8) as usize, Xid::DoubleBitEcc))
                .collect(),
            Vec::new(), // a node with no errors must round-trip too
            (0..5)
                .map(|k| rec(2_000_000 + k * 100_000, 12, 0, Xid::NvlinkError))
                .collect(),
        ];
        (nodes, per_node)
    }

    fn collect_per_node(store: &RecordStore, path: &Path) -> Vec<Vec<ErrorRecord>> {
        let mut out = vec![Vec::new(); store.nodes().len()];
        let mut src = store.reader(path).expect("reader");
        while let Some(batch) = src.next_batch().expect("batch") {
            out[batch.node].extend(batch.records);
        }
        out
    }

    #[test]
    fn write_read_round_trip_preserves_streams_and_order() {
        let f = ScratchFile::new("roundtrip");
        let (nodes, per_node) = sample_streams();
        let summary = write_store(f.path(), &nodes, &per_node).expect("write");
        assert_eq!(summary.records, 15);
        assert_eq!(summary.blocks, 2); // the empty node writes no block
        assert_eq!(summary.gpus, 9); // 8 slots on node 3 + 1 on node 12
        assert_eq!(summary.xids, 2);
        assert_eq!(
            summary.bytes,
            std::fs::metadata(f.path()).expect("meta").len()
        );

        let store = RecordStore::open(f.path()).expect("open");
        assert_eq!(store.nodes(), &nodes[..]);
        assert_eq!(store.record_count(), 15);
        assert_eq!(collect_per_node(&store, f.path()), per_node);
    }

    #[test]
    fn large_streams_split_into_multiple_indexed_blocks() {
        let f = ScratchFile::new("multiblock");
        let nodes = vec![NodeId(1)];
        let stream: Vec<ErrorRecord> = (0..(MAX_BLOCK_RECORDS as u64 * 2 + 17))
            .map(|k| rec(k * 1_000, 1, 0, Xid::MmuError))
            .collect();
        let per_node = vec![stream.clone()];
        let summary = write_store(f.path(), &nodes, &per_node).expect("write");
        assert_eq!(summary.blocks, 3);
        let store = RecordStore::open(f.path()).expect("open");
        assert_eq!(store.blocks().len(), 3);
        // Index min/max must bracket each block's actual span.
        for b in store.blocks() {
            assert!(b.min_at <= b.max_at);
            assert!(b.count as usize <= MAX_BLOCK_RECORDS);
        }
        assert_eq!(collect_per_node(&store, f.path()), per_node);
    }

    #[test]
    fn zero_record_store_is_valid_and_yields_nothing() {
        let f = ScratchFile::new("zero");
        let nodes = vec![NodeId(1), NodeId(2)];
        let summary = write_store(f.path(), &nodes, &[Vec::new(), Vec::new()]).expect("write");
        assert_eq!(summary.records, 0);
        let store = RecordStore::open(f.path()).expect("open");
        assert_eq!(store.record_count(), 0);
        let mut src = store.reader(f.path()).expect("reader");
        assert_eq!(src.next_batch().expect("eof"), None);
    }

    #[test]
    fn empty_file_is_a_typed_store_error() {
        let f = ScratchFile::new("emptyfile");
        std::fs::write(f.path(), b"").expect("touch");
        let err = RecordStore::open(f.path()).expect_err("empty file must fail");
        assert!(matches!(err, DataError::Store { .. }), "{err}");
        assert!(err.to_string().contains("too short"), "{err}");
    }

    #[test]
    fn bad_magic_and_bad_version_are_typed_store_errors() {
        let f = ScratchFile::new("magic");
        let (nodes, per_node) = sample_streams();
        write_store(f.path(), &nodes, &per_node).expect("write");
        let good = std::fs::read(f.path()).expect("read back");

        let mut bad = good.clone();
        bad[0] = b'X';
        std::fs::write(f.path(), &bad).expect("rewrite");
        let err = RecordStore::open(f.path()).expect_err("bad magic");
        assert!(err.to_string().contains("bad magic"), "{err}");

        let mut bad = good.clone();
        bad[4] = 0xFF; // version LE low byte
        std::fs::write(f.path(), &bad).expect("rewrite");
        let err = RecordStore::open(f.path()).expect_err("bad version");
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn truncation_anywhere_is_a_typed_store_error() {
        let f = ScratchFile::new("truncate");
        let (nodes, per_node) = sample_streams();
        write_store(f.path(), &nodes, &per_node).expect("write");
        let good = std::fs::read(f.path()).expect("read back");

        // Chop the file at several depths: inside the trailer, inside
        // the footer, inside the data region, inside the header.
        for keep in [good.len() - 1, good.len() - 12, good.len() / 2, 11, 5] {
            std::fs::write(f.path(), &good[..keep]).expect("rewrite");
            let err = RecordStore::open(f.path()).expect_err("truncated store must fail");
            assert!(matches!(err, DataError::Store { .. }), "keep={keep}: {err}");
        }
    }

    #[test]
    fn block_corruption_is_caught_by_the_block_checksum() {
        let f = ScratchFile::new("bitflip");
        let (nodes, per_node) = sample_streams();
        write_store(f.path(), &nodes, &per_node).expect("write");
        let mut bytes = std::fs::read(f.path()).expect("read back");
        // Flip one bit inside the first block payload (data region
        // starts right after the 8-byte header).
        bytes[10] ^= 0x40;
        std::fs::write(f.path(), &bytes).expect("rewrite");

        // The footer is intact, so open succeeds...
        let store = RecordStore::open(f.path()).expect("open");
        // ...but pulling the corrupt block is a typed error.
        let mut src = store.reader(f.path()).expect("reader");
        let err = loop {
            match src.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("corrupt block must surface an error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn footer_corruption_is_caught_by_the_footer_checksum() {
        let f = ScratchFile::new("footerflip");
        let (nodes, per_node) = sample_streams();
        write_store(f.path(), &nodes, &per_node).expect("write");
        let mut bytes = std::fs::read(f.path()).expect("read back");
        // Flip a byte just before the 20-byte trailer: inside the footer.
        let i = bytes.len() - TRAILER_BYTES as usize - 3;
        bytes[i] ^= 0x01;
        std::fs::write(f.path(), &bytes).expect("rewrite");
        let err = RecordStore::open(f.path()).expect_err("corrupt footer");
        assert!(err.to_string().contains("footer checksum"), "{err}");
    }

    #[test]
    fn node_filter_skips_blocks_without_reading_them() {
        let f = ScratchFile::new("nodefilter");
        let (nodes, per_node) = sample_streams();
        write_store(f.path(), &nodes, &per_node).expect("write");
        let store = RecordStore::open(f.path()).expect("open");

        let mut src = store.reader(f.path()).expect("reader").select_nodes(&[NodeId(12)]);
        let mut got = Vec::new();
        while let Some(b) = src.next_batch().expect("batch") {
            assert_eq!(store.nodes()[b.node], NodeId(12));
            got.extend(b.records);
        }
        assert_eq!(got, per_node[2]);
        assert_eq!(src.blocks_skipped(), 1, "node 3's block must be index-skipped");
    }

    #[test]
    fn time_filter_skips_disjoint_blocks_and_trims_overlapping_ones() {
        let f = ScratchFile::new("timefilter");
        // Two far-apart time clusters on one node → two disjoint blocks.
        let nodes = vec![NodeId(5)];
        let early: Vec<ErrorRecord> = (0..MAX_BLOCK_RECORDS as u64)
            .map(|k| rec(k * 1_000, 5, 0, Xid::DoubleBitEcc))
            .collect();
        let late: Vec<ErrorRecord> = (0..100)
            .map(|k| rec(1_000_000_000_000 + k * 1_000, 5, 0, Xid::NvlinkError))
            .collect();
        let stream: Vec<ErrorRecord> = early.iter().chain(late.iter()).copied().collect();
        write_store(f.path(), &nodes, &[stream]).expect("write");
        let store = RecordStore::open(f.path()).expect("open");
        assert_eq!(store.blocks().len(), 2);

        let start = Timestamp::from_micros(1_000_000_000_000);
        let end = Timestamp::from_micros(1_000_000_050_000);
        let mut src = store
            .reader(f.path())
            .expect("reader")
            .select_time_range(start, end);
        let mut got = Vec::new();
        while let Some(b) = src.next_batch().expect("batch") {
            got.extend(b.records);
        }
        assert_eq!(src.blocks_skipped(), 1, "the early block must be index-skipped");
        assert_eq!(got.len(), 50);
        assert!(got.iter().all(|r| r.at >= start && r.at < end));
    }

    #[test]
    fn in_memory_record_source_matches_store_reader() {
        let f = ScratchFile::new("inmem");
        let (nodes, per_node) = sample_streams();
        write_store(f.path(), &nodes, &per_node).expect("write");
        let store = RecordStore::open(f.path()).expect("open");
        let from_disk = collect_per_node(&store, f.path());

        let mut mem = InMemoryRecordSource::new(&nodes, &per_node);
        let mut from_mem = vec![Vec::new(); nodes.len()];
        while let Some(b) = mem.next_batch().expect("batch") {
            from_mem[b.node].extend(b.records);
        }
        assert_eq!(from_mem, from_disk);
        assert_eq!(mem.total_records_hint(), Some(15));
    }

    #[test]
    fn writer_rejects_mismatched_shapes() {
        let f = ScratchFile::new("shapes");
        let err = write_store(f.path(), &[NodeId(1)], &[Vec::new(), Vec::new()])
            .expect_err("shape mismatch");
        assert!(matches!(err, DataError::Store { .. }), "{err}");
        let mut w = RecordStoreWriter::create(f.path(), &[NodeId(1)]).expect("create");
        let err = w.append_node(5, &[]).expect_err("node index out of range");
        assert!(err.to_string().contains("out of range"), "{err}");
    }
}
