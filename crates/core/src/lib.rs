//! # resilience-core — the GPU resilience characterization pipeline
//!
//! The paper's primary contribution, as a reusable library. The pipeline
//! (Figure 4) takes raw log data — text syslogs or pre-extracted error
//! records — plus a job accounting table, and produces every quantity the
//! evaluation reports:
//!
//! - [`coalesce`] — **Algorithm 1**: error coalescing and persistence
//!   analysis (identical message + same GPU within Δt merge into one
//!   error; the span of the merged burst is its persistence).
//! - [`stats`] — error counts, system and per-node MTBE, persistence
//!   summaries (Table 1), lost-GPU-hours and the beyond-P95 tail share
//!   (Section 4.3).
//! - [`propagation`] — intra-GPU and inter-GPU conditional propagation
//!   probabilities with mean propagation times (Figures 5–7) and NVLink
//!   multi-GPU involvement (Figure 6).
//! - [`job_impact`] — the ±20 s error-to-job-failure join, per-XID job
//!   failure probabilities (Table 2), job statistics (Table 3), and the
//!   Figure 9a/9b distributions.
//! - [`downtime`] — node unavailability statistics and the
//!   MTTF/(MTTF+MTTR) availability estimate (Figure 9c, Section 5.4).
//! - [`counterfactual`] — the Section 5.5 what-if analysis: drop
//!   top-offending GPUs and/or whole error classes, recompute MTBE and
//!   availability.
//! - [`pipeline`] — end-to-end orchestration behind
//!   [`pipeline::PipelineBuilder`]: text → extraction (parallelized per
//!   node via `dr-par`) → coalescing → the full
//!   [`pipeline::StudyResults`] bundle.
//! - [`source`] — streaming log ingestion: the [`source::LogSource`]
//!   trait plus in-memory, directory, and campaign-generator
//!   implementations, so Stage I pulls bounded chunk waves instead of a
//!   materialized corpus.
//! - [`store`] — the write-once columnar `ErrorRecord` store: the
//!   extract pass tees per-node record streams into a checksummed
//!   binary file, and [`store::RecordSource`] replays them into the
//!   pipeline in milliseconds with bit-identical results.
//! - [`stream`] — the online variant: incremental Algorithm 1, a
//!   constant-memory live Table 1 (P² quantiles), and the event-time
//!   [`stream::WatermarkBuffer`] that reorders late log lines for
//!   monitoring deployments.
//! - [`engine`] — the fold-based analysis core: every batch analysis
//!   restated as an [`engine::AnalysisEngine`] accumulator
//!   (`ingest` per episode, `snapshot` at any point), composed into
//!   [`engine::StudyEngine`] — bit-identical to the batch passes by
//!   the tier-1 differential test.
//! - [`tail`] — [`tail::TailSource`]: a [`source::LogSource`] that
//!   follows growing, rotating per-node log files with inode/offset
//!   checkpoints for resumable live ingestion.
//! - [`watch`] — the live path: [`watch::WatchSession`] chains tailed
//!   sources through extraction, watermarking, and incremental
//!   coalescing into rolling-window accumulators and deterministic
//!   event-time threshold alerts.
//!
//! Everything operates on plain data types (`ErrorRecord`, `JobRecord`),
//! so the pipeline runs unchanged on synthetic campaigns or real logs.
//!
//! Every stage accepts a write-only [`dr_obs::MetricsSink`] (the
//! `*_observed` variants and [`pipeline::PipelineBuilder::metrics`]);
//! attaching one never changes any result.

pub mod coalesce;
pub mod counterfactual;
pub mod downtime;
pub mod engine;
pub mod job_impact;
pub mod pipeline;
pub mod propagation;
pub mod shard;
pub mod source;
pub mod stats;
pub mod store;
pub mod stream;
pub mod tail;
pub mod watch;

pub use coalesce::{coalesce, coalesce_observed, CoalesceConfig, CoalescedError};
pub use counterfactual::{counterfactual, CounterfactualReport};
pub use downtime::{availability, DowntimeAcc, DowntimeStats};
pub use engine::{
    AnalysisEngine, CategoryMtbeAcc, CounterfactualAcc, JobImpactAcc, LostHoursAcc,
    OverallMtbeAcc, PropagationAcc, StudyEngine, Table1Acc,
};
pub use job_impact::{JobImpactAnalysis, Table2Row, Table3Row};
pub use pipeline::{PipelineBuilder, Stage1Engine, StudyConfig, StudyResults};
pub use propagation::{NvlinkSpread, PropagationAnalysis, PropagationEdge};
pub use shard::{
    extract_and_coalesce, extract_and_coalesce_observed, extract_and_coalesce_source,
    extract_and_coalesce_source_observed, extract_and_coalesce_source_prefetch_observed,
    extract_sharded, extract_sharded_observed, extract_source, extract_source_observed,
    extract_source_prefetch, extract_source_prefetch_observed, merge_and_coalesce,
    merge_and_coalesce_observed, plan_chunks, ChunkSpec, WaveConfig,
};
pub use source::{
    collect_source, pull_wave, DirSource, GeneratorSource, InMemorySource, LogChunk, LogSource,
    Prefetcher, Wave, WaveRx,
};
pub use stats::{lost_gpu_hours, table1, LostHours, Table1Row};
pub use store::{
    extract_to_store, write_store, InMemoryRecordSource, RecordBatch, RecordSource, RecordStore,
    RecordStoreWriter, StoreRecordSource, StoreSummary,
};
pub use stream::{OnlineRow, OnlineStats, StreamCoalescer, WatermarkBuffer};
pub use tail::TailSource;
pub use watch::{
    Alert, AlertKind, OffenderRate, OffenderRateAcc, WatchConfig, WatchSession, WatchSnapshot,
    WatchStats, WindowedMtbe, WindowedMtbeAcc, WindowedPropagation, WindowedPropagationAcc,
};
