//! End-to-end pipeline orchestration (Figure 4).
//!
//! The front door is [`PipelineBuilder`]: configure jobs, downtime,
//! chunking, the Stage I engine, and an optional metrics sink with named
//! setters, then run from a streaming [`LogSource`]
//! ([`PipelineBuilder::run_source`] — bounded-memory ingestion from
//! disk, a campaign generator, or a wrapped buffer), from materialized
//! text ([`PipelineBuilder::run_text`], a thin [`InMemorySource`]
//! adapter), from records ([`PipelineBuilder::run_records`] — the
//! full-fidelity path used for the flagship 855-day reproduction, where
//! materializing ~10 M text lines would only exercise the same code the
//! text path already validates on a node subset), from a columnar
//! record store ([`PipelineBuilder::run_record_source`] — replay a
//! previously extracted corpus without re-paying Stage I), or from
//! pre-coalesced errors ([`PipelineBuilder::run_coalesced`]).
//!
//! Observability is strictly write-only: attaching a recording
//! [`MetricsSink`] never changes any `StudyResults` field (bit-identity
//! is a tier-1 test).

use crate::coalesce::{coalesce, CoalesceConfig, CoalescedError};
use crate::counterfactual::CounterfactualReport;
use crate::downtime::DowntimeStats;
use crate::engine::StudyEngine;
use crate::job_impact::{JobImpactAnalysis, JobImpactConfig, Table3Row};
use crate::propagation::PropagationAnalysis;
use crate::source::{InMemorySource, LogSource};
use crate::stats::{CategoryMtbe, LostHours, Table1Row};
use dr_faults::DowntimeInterval;
use dr_logscan::{BaselineExtractor, ExtractStats};
use dr_obs::MetricsSink;
use dr_slurm::JobRecord;
use dr_xid::{DataError, Duration, ErrorRecord, NodeId};

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct StudyConfig {
    pub coalesce: CoalesceConfig,
    /// Propagation window Δt for Figures 5–7.
    pub propagation_window: Duration,
    pub job_impact: JobImpactConfig,
    /// Measurement window (hours).
    pub observation_hours: f64,
    /// GPU node population for per-node normalization.
    pub node_count: u32,
}

impl StudyConfig {
    /// The Ampere Table 1 setting: 855 days, 206 nodes.
    pub fn ampere_study() -> Self {
        StudyConfig {
            coalesce: CoalesceConfig::default(),
            propagation_window: Duration::from_secs(60),
            job_impact: JobImpactConfig::default(),
            observation_hours: 855.0 * 24.0,
            node_count: 206,
        }
    }

    /// Adjust the window for a campaign of different size.
    pub fn with_window(mut self, observation_hours: f64, node_count: u32) -> Self {
        self.observation_hours = observation_hours;
        self.node_count = node_count;
        self
    }
}

/// Everything the study reports, bundled.
#[derive(Clone, Debug)]
pub struct StudyResults {
    pub config: StudyConfig,
    pub coalesced: Vec<CoalescedError>,
    pub table1: Vec<Table1Row>,
    /// Overall (system, per-node) MTBE in hours.
    pub overall_mtbe_h: (Option<f64>, Option<f64>),
    pub category_mtbe: CategoryMtbe,
    pub lost_hours: LostHours,
    pub propagation: PropagationAnalysis,
    pub counterfactual: CounterfactualReport,
    /// Present when a job table was supplied.
    pub job_impact: Option<JobImpactAnalysis>,
    pub table3: Option<Vec<Table3Row>>,
    /// Present when downtime intervals were supplied.
    pub downtime: Option<DowntimeStats>,
    /// Availability estimate MTTF/(MTTF+MTTR), present with downtime data.
    pub availability: Option<f64>,
}

impl StudyResults {
    /// Run the pipeline from structured records.
    pub fn from_records(
        records: &[ErrorRecord],
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
    ) -> StudyResults {
        let coalesced = coalesce(records, config.coalesce);
        Self::from_coalesced(coalesced, jobs, downtime, config)
    }

    /// Run the analyses from already-coalesced errors.
    pub fn from_coalesced(
        coalesced: Vec<CoalescedError>,
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
    ) -> StudyResults {
        Self::from_coalesced_observed(coalesced, jobs, downtime, config, &MetricsSink::disabled())
    }

    /// [`StudyResults::from_coalesced`] with Stage II+ observability:
    /// stats/propagation/job-impact spans and counters. A thin wrapper
    /// over the incremental [`StudyEngine`]: fold the whole corpus, then
    /// snapshot every section — bit-identical to the batch analyses by
    /// the tier-1 differential test. Every accumulator is a pure
    /// function of the ingested sequence, so the results are also
    /// bit-identical with any sink.
    pub(crate) fn from_coalesced_observed(
        coalesced: Vec<CoalescedError>,
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
        sink: &MetricsSink,
    ) -> StudyResults {
        use dr_obs::{Counter, Stage};
        sink.add(Stage::Stats, Counter::Episodes, coalesced.len() as u64);

        let mut engine = StudyEngine::new(config, jobs, downtime);
        {
            let _span = sink.span(Stage::Stats, "fold");
            for e in &coalesced {
                engine.ingest(e);
            }
        }
        engine.finish_observed(coalesced, sink)
    }

    /// Convenience: the Table 1 row for one XID.
    pub fn table1_row(&self, xid: dr_xid::Xid) -> Option<&Table1Row> {
        self.table1.iter().find(|r| r.xid == xid)
    }
}

/// Which Stage I (text → records) engine [`PipelineBuilder::run_text`]
/// uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage1Engine {
    /// Byte-balanced sharded extraction with replayed scanner state,
    /// k-way merged into the streaming coalescer (the optimized default).
    Sharded,
    /// The pre-optimization pipeline, kept as the differential oracle and
    /// the benchmark "pre" engine: per-node extraction on the baseline
    /// (per-call Pike VM) engine, concatenate, globally sort,
    /// batch-coalesce. Record output is bit-identical to `Sharded`;
    /// `syslog_lines` keeps the legacy heuristic definition (see
    /// [`dr_logscan::BaselineExtractor`]).
    Baseline,
}

/// The single front door to the study pipeline.
///
/// Replaces the retired `from_text_logs` / `from_text_logs_chunked` /
/// `from_text_logs_baseline` constructor family with named setters:
///
/// ```
/// use resilience_core::{PipelineBuilder, StudyConfig};
/// # let node_logs: Vec<(dr_xid::NodeId, Vec<String>)> = Vec::new();
/// let cfg = StudyConfig::ampere_study();
/// let (results, stats) = PipelineBuilder::new(cfg).run_text(&node_logs);
/// # let _ = (results, stats);
/// ```
///
/// Attach a recording [`MetricsSink`] with [`PipelineBuilder::metrics`]
/// to collect per-stage spans, counters, and throughput histograms;
/// instrumentation is write-only and never changes the results.
#[derive(Clone, Debug)]
pub struct PipelineBuilder<'a> {
    config: StudyConfig,
    jobs: Option<&'a [JobRecord]>,
    downtime: Option<&'a [DowntimeInterval]>,
    chunk_bytes: Option<u64>,
    engine: Stage1Engine,
    prefetch: bool,
    records_out: Option<std::path::PathBuf>,
    metrics: MetricsSink,
}

impl<'a> PipelineBuilder<'a> {
    /// A builder with no job table, no downtime data, worker-pool-sized
    /// chunks, the sharded engine, and metrics disabled.
    pub fn new(config: StudyConfig) -> Self {
        PipelineBuilder {
            config,
            jobs: None,
            downtime: None,
            chunk_bytes: None,
            engine: Stage1Engine::Sharded,
            prefetch: false,
            records_out: None,
            metrics: MetricsSink::disabled(),
        }
    }

    /// Attach a Slurm job table (enables Table 3 / job-impact analyses).
    pub fn jobs(self, jobs: &'a [JobRecord]) -> Self {
        PipelineBuilder {
            jobs: Some(jobs),
            ..self
        }
    }

    /// [`PipelineBuilder::jobs`], `Option`-shaped for call sites that may
    /// or may not have a table.
    pub fn maybe_jobs(self, jobs: Option<&'a [JobRecord]>) -> Self {
        PipelineBuilder { jobs, ..self }
    }

    /// Attach downtime intervals (enables MTTR and availability).
    pub fn downtime(self, downtime: &'a [DowntimeInterval]) -> Self {
        PipelineBuilder {
            downtime: Some(downtime),
            ..self
        }
    }

    /// [`PipelineBuilder::downtime`], `Option`-shaped.
    pub fn maybe_downtime(self, downtime: Option<&'a [DowntimeInterval]>) -> Self {
        PipelineBuilder { downtime, ..self }
    }

    /// Pin the Stage I chunk-size target (bytes per work unit), for tests
    /// and benchmarks that fix the decomposition. Default sizes chunks to
    /// the worker pool. Only the sharded engine chunks.
    pub fn chunk_bytes(self, target: u64) -> Self {
        PipelineBuilder {
            chunk_bytes: Some(target),
            ..self
        }
    }

    /// Select the Stage I engine (default [`Stage1Engine::Sharded`]).
    pub fn engine(self, engine: Stage1Engine) -> Self {
        PipelineBuilder { engine, ..self }
    }

    /// Overlap Stage I ingestion with extraction (default off): a
    /// dedicated [`crate::source::Prefetcher`] thread pulls the next
    /// chunk wave while the worker pool extracts the current one. Results
    /// are bit-identical with prefetch on or off; peak resident log text
    /// rises from one wave to at most two. Only the sharded engine
    /// streams, so the baseline oracle ignores this.
    pub fn prefetch(self, prefetch: bool) -> Self {
        PipelineBuilder { prefetch, ..self }
    }

    /// Tee the extract pass's per-node record streams into a columnar
    /// store at `path` (see [`crate::store`]), so later runs can replay
    /// the analysis from records without re-parsing text. One pass over
    /// the corpus; the analysis results are unchanged. Only the sharded
    /// engine extracts per node, so [`Stage1Engine::Baseline`] rejects
    /// this with a [`DataError::Usage`].
    pub fn record_store(self, path: impl Into<std::path::PathBuf>) -> Self {
        PipelineBuilder {
            records_out: Some(path.into()),
            ..self
        }
    }

    /// Attach a metrics sink. Pass [`MetricsSink::recording`] to collect
    /// per-stage spans/counters/histograms, exportable with
    /// [`MetricsSink::export_json`]. Write-only: results are bit-identical
    /// with any sink.
    pub fn metrics(self, sink: MetricsSink) -> Self {
        PipelineBuilder {
            metrics: sink,
            ..self
        }
    }

    /// Run from any [`LogSource`] — the streaming front door. Stage I
    /// pulls chunk waves from the source (peak resident text is
    /// O(workers × chunk_bytes)), then the full analysis pipeline runs on
    /// the extracted records. For a given corpus the results are
    /// bit-identical to [`PipelineBuilder::run_text`] on the materialized
    /// lines, at every chunk size and worker count.
    ///
    /// The [`Stage1Engine::Baseline`] oracle has no streaming form (it is
    /// the pre-optimization batch pipeline, kept for differential
    /// testing); under that engine the source is collected first.
    pub fn run_source<'s>(
        &self,
        source: &mut (dyn LogSource<'s> + Send),
    ) -> Result<(StudyResults, ExtractStats), DataError> {
        match self.engine {
            Stage1Engine::Sharded => {
                // The node table must be captured before extraction
                // takes the mutable borrow.
                let nodes = self
                    .records_out
                    .as_ref()
                    .map(|_| source.nodes().to_vec());
                let (per_node, stats) = if self.prefetch {
                    crate::shard::extract_source_prefetch_observed(
                        source,
                        self.chunk_bytes,
                        &self.metrics,
                    )?
                } else {
                    crate::shard::extract_source_observed(source, self.chunk_bytes, &self.metrics)?
                };
                // Tee point: per-node streams are exactly what the store
                // persists, before the merge consumes them.
                if let (Some(path), Some(nodes)) = (&self.records_out, &nodes) {
                    crate::store::write_store(path, nodes, &per_node)?;
                }
                let coalesced = crate::shard::merge_and_coalesce_observed(
                    per_node,
                    self.config.coalesce,
                    &self.metrics,
                );
                Ok((self.run_coalesced(coalesced), stats))
            }
            Stage1Engine::Baseline => {
                if let Some(path) = &self.records_out {
                    return Err(DataError::Usage {
                        option: "--records".to_string(),
                        message: format!(
                            "record store capture ({}) requires the sharded engine",
                            path.display()
                        ),
                    });
                }
                let logs = crate::source::collect_source(source)?;
                Ok(self.run_text(&logs))
            }
        }
    }

    /// Run from a [`crate::store::RecordSource`] — the replay front
    /// door. Batches are pulled one block at a time (bounded memory,
    /// `peak_resident_bytes` gauge as on the text path), reassembled
    /// into per-node streams, and fed to the same merge + analyses as
    /// [`PipelineBuilder::run_source`]. On the same corpus the results
    /// are bit-identical to the text path, because the store preserves
    /// extraction's per-node record streams exactly — only Stage I's
    /// text parsing is skipped, which is what makes replay ≥20× faster.
    pub fn run_record_source(
        &self,
        source: &mut dyn crate::store::RecordSource,
    ) -> Result<StudyResults, DataError> {
        use dr_obs::{Counter, Stage};
        let sink = &self.metrics;
        let mut per_node: Vec<Vec<ErrorRecord>> = vec![Vec::new(); source.nodes().len()];
        loop {
            let batch = {
                let _span = sink.span(Stage::Shard, "total");
                source.next_batch()?
            };
            let Some(batch) = batch else {
                break;
            };
            sink.add(Stage::Shard, Counter::Bytes, batch.bytes);
            sink.add(Stage::Extract, Counter::Records, batch.records.len() as u64);
            sink.gauge_max(Stage::Extract, "peak_resident_bytes", batch.bytes as f64);
            let Some(stream) = per_node.get_mut(batch.node) else {
                return Err(DataError::Store {
                    path: "<record source>".to_string(),
                    message: format!(
                        "batch names node index {} but the source declares {} nodes",
                        batch.node,
                        per_node.len()
                    ),
                });
            };
            stream.extend(batch.records);
        }
        let coalesced =
            crate::shard::merge_and_coalesce_observed(per_node, self.config.coalesce, sink);
        Ok(self.run_coalesced(coalesced))
    }

    /// Run from per-node syslog text: Stage I on the configured engine,
    /// then the full analysis pipeline. Returns the results plus merged
    /// extraction statistics. A thin [`InMemorySource`] adapter over
    /// [`PipelineBuilder::run_source`].
    pub fn run_text(&self, node_logs: &[(NodeId, Vec<String>)]) -> (StudyResults, ExtractStats) {
        use dr_obs::{Counter, Stage};
        let sink = &self.metrics;
        match self.engine {
            Stage1Engine::Sharded => {
                let mut source = InMemorySource::new(node_logs);
                match self.run_source(&mut source) {
                    Ok(r) => r,
                    // dr-lint: allow(panic-reachability): InMemorySource::next_chunk never returns Err
                    Err(_) => unreachable!("in-memory sources are infallible"),
                }
            }
            Stage1Engine::Baseline => {
                let (records, stats) = {
                    let _span = sink.span(Stage::Extract, "total");
                    // One extractor per node: syslog year inference is
                    // per-file state.
                    let per_node: Vec<(Vec<ErrorRecord>, ExtractStats)> =
                        dr_par::par_map(node_logs, |(_, lines)| {
                            let mut ex = BaselineExtractor::new();
                            let recs = ex.extract_all(lines.iter().map(|s| s.as_str()));
                            (recs, ex.stats())
                        });
                    let mut records = Vec::new();
                    let mut stats = ExtractStats::default();
                    for (mut recs, s) in per_node {
                        records.append(&mut recs);
                        stats.merge(&s);
                    }
                    dr_xid::record::sort_records(&mut records);
                    (records, stats)
                };
                sink.add(Stage::Extract, Counter::Lines, stats.lines);
                sink.add(Stage::Extract, Counter::XidLines, stats.xid_lines);
                sink.add(Stage::Extract, Counter::Records, records.len() as u64);
                (self.run_records(&records), stats)
            }
        }
    }

    /// Run from structured records (skips Stage I text extraction).
    pub fn run_records(&self, records: &[ErrorRecord]) -> StudyResults {
        let coalesced =
            crate::coalesce::coalesce_observed(records, self.config.coalesce, &self.metrics);
        self.run_coalesced(coalesced)
    }

    /// Run the analyses from already-coalesced errors.
    pub fn run_coalesced(&self, coalesced: Vec<CoalescedError>) -> StudyResults {
        StudyResults::from_coalesced_observed(
            coalesced,
            self.jobs,
            self.downtime,
            self.config,
            &self.metrics,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::syslog::format_line;
    use dr_xid::{ErrorDetail, GpuId, Timestamp, Xid};

    fn rec(secs: u64, node: u32, xid: Xid) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::from_secs(secs),
            GpuId::at_slot(dr_xid::NodeId(node), 0),
            xid,
            ErrorDetail::new(1, 2),
        )
    }

    #[test]
    fn records_path_produces_all_sections() {
        let records = vec![
            rec(100, 1, Xid::GspRpcTimeout),
            rec(102, 1, Xid::GspRpcTimeout), // merges
            rec(500, 2, Xid::MmuError),
            rec(900, 3, Xid::NvlinkError),
        ];
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let r = StudyResults::from_records(&records, None, None, cfg);
        assert_eq!(r.coalesced.len(), 3);
        assert_eq!(r.table1_row(Xid::GspRpcTimeout).unwrap().count, 1);
        assert_eq!(r.overall_mtbe_h.0, Some(1_000.0 / 3.0));
        assert!(r.job_impact.is_none());
        assert!(r.availability.is_none());
        assert!(!r.counterfactual.offenders.is_empty());
    }

    #[test]
    fn text_path_matches_records_path() {
        // Render records to text, re-extract, and verify identical stats.
        let records = vec![
            rec(3_600, 1, Xid::GspRpcTimeout),
            rec(3_604, 1, Xid::GspRpcTimeout),
            rec(7_200, 1, Xid::NvlinkError),
        ];
        let lines: Vec<String> = records.iter().map(|r| format_line(r, 0)).collect();
        let logs = vec![(dr_xid::NodeId(1), lines)];
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let (from_text, stats) = PipelineBuilder::new(cfg).run_text(&logs);
        let from_records = StudyResults::from_records(&records, None, None, cfg);
        assert_eq!(stats.xid_lines, 3);
        assert_eq!(from_text.coalesced.len(), from_records.coalesced.len());
        assert_eq!(
            from_text.table1_row(Xid::GspRpcTimeout).unwrap().count,
            from_records.table1_row(Xid::GspRpcTimeout).unwrap().count
        );
    }

    #[test]
    fn sharded_text_path_matches_baseline_pipeline() {
        // The optimized pipeline (fast extractor, byte-balanced chunks,
        // streaming coalesce) must coalesce identically to the original
        // one (baseline VM, global sort, batch coalesce), for any chunk
        // size.
        let mut logs = Vec::new();
        for node in 1..=3u32 {
            let records: Vec<_> = (0..40)
                .map(|k| {
                    let mut r = rec(3_000 + k * 7 + node as u64, node, Xid::GspRpcTimeout);
                    if k % 3 == 0 {
                        r.xid = Xid::MmuError;
                    }
                    r
                })
                .collect();
            let lines: Vec<String> = records.iter().map(|r| format_line(r, 0)).collect();
            logs.push((dr_xid::NodeId(node), lines));
        }
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let (base, base_stats) = PipelineBuilder::new(cfg)
            .engine(Stage1Engine::Baseline)
            .run_text(&logs);
        for target in [Some(1), Some(200), Some(1 << 20), None] {
            let mut b = PipelineBuilder::new(cfg);
            if let Some(t) = target {
                b = b.chunk_bytes(t);
            }
            let (fast, stats) = b.run_text(&logs);
            assert_eq!(fast.coalesced, base.coalesced, "chunk target {target:?}");
            assert_eq!(stats.lines, base_stats.lines);
            assert_eq!(stats.xid_lines, base_stats.xid_lines);
        }
    }

    #[test]
    fn record_source_path_matches_text_path_exactly() {
        let mut logs = Vec::new();
        let mut per_node = Vec::new();
        let mut nodes = Vec::new();
        for node in 1..=3u32 {
            let records: Vec<_> = (0..30)
                .map(|k| rec(1_000 + k * 11 + node as u64, node, Xid::NvlinkError))
                .collect();
            let lines: Vec<String> = records.iter().map(|r| format_line(r, 0)).collect();
            logs.push((dr_xid::NodeId(node), lines));
            nodes.push(dr_xid::NodeId(node));
            per_node.push(records);
        }
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let builder = PipelineBuilder::new(cfg);
        let (from_text, _) = builder.run_text(&logs);
        let mut source = crate::store::InMemoryRecordSource::new(&nodes, &per_node);
        let from_records = builder.run_record_source(&mut source).expect("record path");
        assert_eq!(
            format!("{from_text:?}"),
            format!("{from_records:?}"),
            "record replay must be bit-identical to the text path"
        );
    }

    #[test]
    fn baseline_engine_rejects_record_store_capture() {
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let logs = vec![(dr_xid::NodeId(1), Vec::<String>::new())];
        let mut source = crate::source::InMemorySource::new(&logs);
        let err = PipelineBuilder::new(cfg)
            .engine(Stage1Engine::Baseline)
            .record_store("/tmp/never-written.bin")
            .run_source(&mut source)
            .expect_err("baseline + record_store must be a usage error");
        assert!(matches!(err, DataError::Usage { .. }), "{err}");
    }

    #[test]
    fn text_path_ignores_noise() {
        let logs = vec![(
            dr_xid::NodeId(1),
            vec![
                "Jan  1 01:00:00 gpub001 systemd[1]: Started Session".to_string(),
                "not a syslog line at all".to_string(),
            ],
        )];
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let (r, stats) = PipelineBuilder::new(cfg).run_text(&logs);
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.xid_lines, 0);
        assert!(r.coalesced.is_empty());
    }
}
