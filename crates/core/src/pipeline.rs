//! End-to-end pipeline orchestration (Figure 4).
//!
//! Two entry points:
//!
//! * [`StudyResults::from_text_logs`] — Stage I included: per-node syslog
//!   text → regex extraction (parallelized across nodes with `dr-par`,
//!   mirroring the paper's 202 GB scan) → coalescing → analyses.
//! * [`StudyResults::from_records`] — start from structured records (the
//!   full-fidelity path used for the flagship 855-day reproduction, where
//!   materializing ~10 M text lines would only exercise the same code the
//!   text path already validates on a node subset).

use crate::coalesce::{coalesce, CoalesceConfig, CoalescedError};
use crate::counterfactual::{counterfactual, CounterfactualReport};
use crate::downtime::{availability, downtime_stats, DowntimeStats};
use crate::job_impact::{analyze_jobs, table3, JobImpactAnalysis, JobImpactConfig, Table3Row};
use crate::propagation::{analyze, PropagationAnalysis};
use crate::stats::{
    category_mtbe, lost_gpu_hours, overall_mtbe, table1, CategoryMtbe, LostHours, Table1Row,
};
use dr_faults::DowntimeInterval;
use dr_logscan::{BaselineExtractor, ExtractStats};
use dr_slurm::JobRecord;
use dr_xid::{Duration, ErrorRecord, NodeId};

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct StudyConfig {
    pub coalesce: CoalesceConfig,
    /// Propagation window Δt for Figures 5–7.
    pub propagation_window: Duration,
    pub job_impact: JobImpactConfig,
    /// Measurement window (hours).
    pub observation_hours: f64,
    /// GPU node population for per-node normalization.
    pub node_count: u32,
}

impl StudyConfig {
    /// The Ampere Table 1 setting: 855 days, 206 nodes.
    pub fn ampere_study() -> Self {
        StudyConfig {
            coalesce: CoalesceConfig::default(),
            propagation_window: Duration::from_secs(60),
            job_impact: JobImpactConfig::default(),
            observation_hours: 855.0 * 24.0,
            node_count: 206,
        }
    }

    /// Adjust the window for a campaign of different size.
    pub fn with_window(mut self, observation_hours: f64, node_count: u32) -> Self {
        self.observation_hours = observation_hours;
        self.node_count = node_count;
        self
    }
}

/// Everything the study reports, bundled.
#[derive(Clone, Debug)]
pub struct StudyResults {
    pub config: StudyConfig,
    pub coalesced: Vec<CoalescedError>,
    pub table1: Vec<Table1Row>,
    /// Overall (system, per-node) MTBE in hours.
    pub overall_mtbe_h: (Option<f64>, Option<f64>),
    pub category_mtbe: CategoryMtbe,
    pub lost_hours: LostHours,
    pub propagation: PropagationAnalysis,
    pub counterfactual: CounterfactualReport,
    /// Present when a job table was supplied.
    pub job_impact: Option<JobImpactAnalysis>,
    pub table3: Option<Vec<Table3Row>>,
    /// Present when downtime intervals were supplied.
    pub downtime: Option<DowntimeStats>,
    /// Availability estimate MTTF/(MTTF+MTTR), present with downtime data.
    pub availability: Option<f64>,
}

impl StudyResults {
    /// Run the pipeline from structured records.
    pub fn from_records(
        records: &[ErrorRecord],
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
    ) -> StudyResults {
        let coalesced = coalesce(records, config.coalesce);
        Self::from_coalesced(coalesced, jobs, downtime, config)
    }

    /// Run the analyses from already-coalesced errors.
    pub fn from_coalesced(
        coalesced: Vec<CoalescedError>,
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
    ) -> StudyResults {
        let t1 = table1(&coalesced, config.observation_hours, config.node_count);
        let overall = overall_mtbe(&coalesced, config.observation_hours, config.node_count);
        let cat = category_mtbe(&coalesced, config.observation_hours, config.node_count);
        let lost = lost_gpu_hours(&coalesced);
        let prop = analyze(&coalesced, config.propagation_window);

        let dt = downtime.map(downtime_stats);
        let mttr = dt.as_ref().map(|d| d.mean_service_h).unwrap_or(0.3);
        let cf = counterfactual(&coalesced, config.observation_hours, config.node_count, mttr);

        let avail = match (&dt, overall.1) {
            (Some(d), Some(mtbe)) => Some(availability(mtbe, d.mean_service_h)),
            _ => None,
        };

        let ji = jobs.map(|j| analyze_jobs(j, &coalesced, config.job_impact));
        let t3 = jobs.map(table3);

        StudyResults {
            config,
            table1: t1,
            overall_mtbe_h: overall,
            category_mtbe: cat,
            lost_hours: lost,
            propagation: prop,
            counterfactual: cf,
            job_impact: ji,
            table3: t3,
            downtime: dt,
            availability: avail,
            coalesced,
        }
    }

    /// Stage I + pipeline: sharded parallel extraction from per-node
    /// syslog text (byte-balanced chunks with replayed scanner state),
    /// k-way merged into the streaming coalescer — no global record sort
    /// barrier between Stage I and Stage II. Returns the merged
    /// extraction statistics alongside the results.
    pub fn from_text_logs(
        node_logs: &[(NodeId, Vec<String>)],
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
    ) -> (StudyResults, ExtractStats) {
        Self::from_text_logs_chunked(node_logs, jobs, downtime, config, None)
    }

    /// [`StudyResults::from_text_logs`] with an explicit chunk-size
    /// target (bytes per Stage I work unit), for tests and benchmarks
    /// that pin the decomposition. `None` sizes chunks to the worker
    /// pool.
    pub fn from_text_logs_chunked(
        node_logs: &[(NodeId, Vec<String>)],
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
        target_chunk_bytes: Option<u64>,
    ) -> (StudyResults, ExtractStats) {
        let (coalesced, stats) =
            crate::shard::extract_and_coalesce(node_logs, config.coalesce, target_chunk_bytes);
        (Self::from_coalesced(coalesced, jobs, downtime, config), stats)
    }

    /// The pre-optimization Stage I pipeline, kept as the differential
    /// oracle and the benchmark "pre" engine: per-node extraction on the
    /// baseline (per-call Pike VM) engine, concatenate, globally sort,
    /// batch-coalesce. Record output is bit-identical to
    /// [`StudyResults::from_text_logs`]; `syslog_lines` keeps the legacy
    /// heuristic definition (see [`dr_logscan::BaselineExtractor`]).
    pub fn from_text_logs_baseline(
        node_logs: &[(NodeId, Vec<String>)],
        jobs: Option<&[JobRecord]>,
        downtime: Option<&[DowntimeInterval]>,
        config: StudyConfig,
    ) -> (StudyResults, ExtractStats) {
        // One extractor per node: syslog year inference is per-file state.
        let per_node: Vec<(Vec<ErrorRecord>, ExtractStats)> =
            dr_par::par_map(node_logs, |(_, lines)| {
                let mut ex = BaselineExtractor::new();
                let recs = ex.extract_all(lines.iter().map(|s| s.as_str()));
                (recs, ex.stats())
            });

        let mut records = Vec::new();
        let mut stats = ExtractStats::default();
        for (mut recs, s) in per_node {
            records.append(&mut recs);
            stats.merge(&s);
        }
        dr_xid::record::sort_records(&mut records);
        (
            Self::from_records(&records, jobs, downtime, config),
            stats,
        )
    }

    /// Convenience: the Table 1 row for one XID.
    pub fn table1_row(&self, xid: dr_xid::Xid) -> Option<&Table1Row> {
        self.table1.iter().find(|r| r.xid == xid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::syslog::format_line;
    use dr_xid::{ErrorDetail, GpuId, Timestamp, Xid};

    fn rec(secs: u64, node: u32, xid: Xid) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::from_secs(secs),
            GpuId::at_slot(dr_xid::NodeId(node), 0),
            xid,
            ErrorDetail::new(1, 2),
        )
    }

    #[test]
    fn records_path_produces_all_sections() {
        let records = vec![
            rec(100, 1, Xid::GspRpcTimeout),
            rec(102, 1, Xid::GspRpcTimeout), // merges
            rec(500, 2, Xid::MmuError),
            rec(900, 3, Xid::NvlinkError),
        ];
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let r = StudyResults::from_records(&records, None, None, cfg);
        assert_eq!(r.coalesced.len(), 3);
        assert_eq!(r.table1_row(Xid::GspRpcTimeout).unwrap().count, 1);
        assert_eq!(r.overall_mtbe_h.0, Some(1_000.0 / 3.0));
        assert!(r.job_impact.is_none());
        assert!(r.availability.is_none());
        assert!(!r.counterfactual.offenders.is_empty());
    }

    #[test]
    fn text_path_matches_records_path() {
        // Render records to text, re-extract, and verify identical stats.
        let records = vec![
            rec(3_600, 1, Xid::GspRpcTimeout),
            rec(3_604, 1, Xid::GspRpcTimeout),
            rec(7_200, 1, Xid::NvlinkError),
        ];
        let lines: Vec<String> = records.iter().map(|r| format_line(r, 0)).collect();
        let logs = vec![(dr_xid::NodeId(1), lines)];
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let (from_text, stats) = StudyResults::from_text_logs(&logs, None, None, cfg);
        let from_records = StudyResults::from_records(&records, None, None, cfg);
        assert_eq!(stats.xid_lines, 3);
        assert_eq!(from_text.coalesced.len(), from_records.coalesced.len());
        assert_eq!(
            from_text.table1_row(Xid::GspRpcTimeout).unwrap().count,
            from_records.table1_row(Xid::GspRpcTimeout).unwrap().count
        );
    }

    #[test]
    fn sharded_text_path_matches_baseline_pipeline() {
        // The optimized pipeline (fast extractor, byte-balanced chunks,
        // streaming coalesce) must coalesce identically to the original
        // one (baseline VM, global sort, batch coalesce), for any chunk
        // size.
        let mut logs = Vec::new();
        for node in 1..=3u32 {
            let records: Vec<_> = (0..40)
                .map(|k| {
                    let mut r = rec(3_000 + k * 7 + node as u64, node, Xid::GspRpcTimeout);
                    if k % 3 == 0 {
                        r.xid = Xid::MmuError;
                    }
                    r
                })
                .collect();
            let lines: Vec<String> = records.iter().map(|r| format_line(r, 0)).collect();
            logs.push((dr_xid::NodeId(node), lines));
        }
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let (base, base_stats) = StudyResults::from_text_logs_baseline(&logs, None, None, cfg);
        for target in [Some(1), Some(200), Some(1 << 20), None] {
            let (fast, stats) =
                StudyResults::from_text_logs_chunked(&logs, None, None, cfg, target);
            assert_eq!(fast.coalesced, base.coalesced, "chunk target {target:?}");
            assert_eq!(stats.lines, base_stats.lines);
            assert_eq!(stats.xid_lines, base_stats.xid_lines);
        }
    }

    #[test]
    fn text_path_ignores_noise() {
        let logs = vec![(
            dr_xid::NodeId(1),
            vec![
                "Jan  1 01:00:00 gpub001 systemd[1]: Started Session".to_string(),
                "not a syslog line at all".to_string(),
            ],
        )];
        let cfg = StudyConfig::ampere_study().with_window(1_000.0, 10);
        let (r, stats) = StudyResults::from_text_logs(&logs, None, None, cfg);
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.xid_lines, 0);
        assert!(r.coalesced.is_empty());
    }
}
