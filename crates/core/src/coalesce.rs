//! Algorithm 1: error coalescing and persistence analysis.
//!
//! Raw driver logs repeat the same error many times in close succession
//! (bursts). To avoid over-counting, identical log lines from the same GPU
//! within Δt of each other merge into a single error whose *persistence*
//! is the span from the first to the last merged occurrence. The paper
//! uses Δt = 5 s (robust across 5–20 s) and caps persistence at one day.

use dr_xid::{Duration, ErrorDetail, ErrorRecord, GpuId, Timestamp, Xid};
use std::collections::BTreeMap;

/// Coalescing parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoalesceConfig {
    /// Merge window Δt.
    pub window: Duration,
    /// Persistence cut-off (one day in the paper). A burst running past
    /// the cut-off is split into a new error.
    pub max_persistence: Duration,
}

impl Default for CoalesceConfig {
    fn default() -> Self {
        CoalesceConfig {
            window: Duration::from_secs(5),
            max_persistence: Duration::from_days(1),
        }
    }
}

impl CoalesceConfig {
    /// Δt variant (for the Section 3.2 robustness ablation).
    pub fn with_window_secs(secs: u64) -> Self {
        CoalesceConfig {
            window: Duration::from_secs(secs),
            ..CoalesceConfig::default()
        }
    }
}

/// One coalesced error: the Algorithm 1 output tuple
/// (e_first, t_start, t_latest − t_start) plus the merge count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoalescedError {
    pub gpu: GpuId,
    pub xid: Xid,
    pub detail: ErrorDetail,
    /// t_start.
    pub start: Timestamp,
    /// t_latest.
    pub last: Timestamp,
    /// Number of raw log occurrences merged into this error.
    pub merged: u32,
}

impl CoalescedError {
    /// The persistence duration (t_latest − t_start).
    pub fn persistence(&self) -> Duration {
        self.last - self.start
    }
}

/// Run Algorithm 1 over raw records.
///
/// Records may arrive in any order; they are grouped by identity
/// (GPU + XID + message detail — the "matches pattern r" step), sorted by
/// time within each group, merged with the Δt window, and the result is
/// returned sorted by start time.
pub fn coalesce(records: &[ErrorRecord], cfg: CoalesceConfig) -> Vec<CoalescedError> {
    // Group by identity (the per-pattern filter of Algorithm 1). Ordered
    // map: iteration order must not depend on hash state, or ties in the
    // final sort would reshuffle between runs.
    let mut groups: BTreeMap<(GpuId, Xid, ErrorDetail), Vec<Timestamp>> = BTreeMap::new();
    for r in records {
        groups.entry(r.identity()).or_default().push(r.at);
    }

    let mut out = Vec::new();
    for ((gpu, xid, detail), mut times) in groups {
        times.sort_unstable();
        let mut i = 0;
        while i < times.len() {
            let start = times[i];
            let mut latest = start;
            let mut merged = 1u32;
            while i + 1 < times.len() {
                let next = times[i + 1];
                // Same message, close in time, and under the persistence
                // cut-off: merge.
                if next - latest <= cfg.window && next - start <= cfg.max_persistence {
                    latest = next;
                    merged += 1;
                    i += 1;
                } else {
                    break;
                }
            }
            out.push(CoalescedError {
                gpu,
                xid,
                detail,
                start,
                last: latest,
                merged,
            });
            i += 1;
        }
    }
    out.sort_by_key(|e| (e.start, e.gpu, e.xid, e.detail));
    out
}

/// [`coalesce`] with observability: a `coalesce/total` span plus input
/// record and output episode counters, recorded once per call. The
/// returned episodes are exactly `coalesce(records, cfg)` — the sink is
/// write-only and cannot influence the output.
pub fn coalesce_observed(
    records: &[ErrorRecord],
    cfg: CoalesceConfig,
    sink: &dr_obs::MetricsSink,
) -> Vec<CoalescedError> {
    use dr_obs::{Counter, Stage};
    let _span = sink.span(Stage::Coalesce, "total");
    let out = coalesce(records, cfg);
    sink.add(Stage::Coalesce, Counter::Records, records.len() as u64);
    sink.add(Stage::Coalesce, Counter::Episodes, out.len() as u64);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::NodeId;
    use proptest::prelude::*;

    fn rec(secs: f64, node: u32, xid: Xid) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::EPOCH + Duration::from_secs_f64(secs),
            GpuId::at_slot(NodeId(node), 0),
            xid,
            ErrorDetail::NONE,
        )
    }

    #[test]
    fn burst_merges_into_one_error() {
        let records: Vec<_> = (0..10).map(|i| rec(i as f64 * 3.0, 1, Xid::GspRpcTimeout)).collect();
        let out = coalesce(&records, CoalesceConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].merged, 10);
        assert_eq!(out[0].persistence().as_secs_f64(), 27.0);
    }

    #[test]
    fn gap_beyond_window_splits() {
        let records = vec![
            rec(0.0, 1, Xid::NvlinkError),
            rec(4.0, 1, Xid::NvlinkError),
            rec(20.0, 1, Xid::NvlinkError), // 16 s gap: new error
        ];
        let out = coalesce(&records, CoalesceConfig::default());
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].merged, 2);
        assert_eq!(out[1].merged, 1);
        assert_eq!(out[1].persistence(), Duration::ZERO);
    }

    #[test]
    fn different_gpus_never_merge() {
        let records = vec![rec(0.0, 1, Xid::MmuError), rec(1.0, 2, Xid::MmuError)];
        let out = coalesce(&records, CoalesceConfig::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn different_xids_never_merge() {
        let records = vec![rec(0.0, 1, Xid::MmuError), rec(1.0, 1, Xid::NvlinkError)];
        let out = coalesce(&records, CoalesceConfig::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn different_details_never_merge() {
        let a = rec(0.0, 1, Xid::NvlinkError);
        let mut b = rec(1.0, 1, Xid::NvlinkError);
        b.detail = ErrorDetail::new(3, 0);
        let out = coalesce(&[a, b], CoalesceConfig::default());
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn persistence_cap_splits_runaway_bursts() {
        // A storm logging every 4 s for 2.5 days must split at the 1-day
        // cut-off into 3 errors.
        let records: Vec<_> = (0..(2.5 * 86_400.0 / 4.0) as u64)
            .map(|i| rec(i as f64 * 4.0, 1, Xid::UncontainedEcc))
            .collect();
        let out = coalesce(&records, CoalesceConfig::default());
        assert_eq!(out.len(), 3);
        for e in &out[..2] {
            assert!(e.persistence().as_secs_f64() <= 86_400.0);
        }
    }

    #[test]
    fn unsorted_input_is_handled() {
        let records = vec![
            rec(8.0, 1, Xid::MmuError),
            rec(0.0, 1, Xid::MmuError),
            rec(4.0, 1, Xid::MmuError),
        ];
        let out = coalesce(&records, CoalesceConfig::default());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].merged, 3);
        assert_eq!(out[0].persistence().as_secs_f64(), 8.0);
    }

    #[test]
    fn window_size_changes_grouping() {
        let records = vec![
            rec(0.0, 1, Xid::MmuError),
            rec(8.0, 1, Xid::MmuError),
            rec(16.0, 1, Xid::MmuError),
        ];
        assert_eq!(coalesce(&records, CoalesceConfig::default()).len(), 3);
        assert_eq!(
            coalesce(&records, CoalesceConfig::with_window_secs(10)).len(),
            1
        );
    }

    #[test]
    fn empty_input() {
        assert!(coalesce(&[], CoalesceConfig::default()).is_empty());
    }

    proptest! {
        /// Coalescing conserves raw occurrences: merged counts sum to the
        /// input length, and output is sorted by start.
        #[test]
        fn conservation_and_order(
            times in prop::collection::vec(0u64..10_000, 0..300),
            nodes in prop::collection::vec(0u32..3, 0..300),
        ) {
            let n = times.len().min(nodes.len());
            let records: Vec<_> = (0..n)
                .map(|i| rec(times[i] as f64, nodes[i], Xid::MmuError))
                .collect();
            let out = coalesce(&records, CoalesceConfig::default());
            let total: u32 = out.iter().map(|e| e.merged).sum();
            prop_assert_eq!(total as usize, n);
            for w in out.windows(2) {
                prop_assert!(w[0].start <= w[1].start);
            }
            // Every coalesced error's span is within the cap.
            for e in &out {
                prop_assert!(e.persistence() <= CoalesceConfig::default().max_persistence);
            }
        }

        /// A larger window never yields more errors.
        #[test]
        fn monotone_in_window(times in prop::collection::vec(0u64..5_000, 1..200)) {
            let records: Vec<_> = times.iter()
                .map(|&t| rec(t as f64, 1, Xid::MmuError))
                .collect();
            let small = coalesce(&records, CoalesceConfig::with_window_secs(5)).len();
            let large = coalesce(&records, CoalesceConfig::with_window_secs(50)).len();
            prop_assert!(large <= small);
        }
    }
}
