//! Byte-balanced sharded Stage I execution.
//!
//! The paper's Stage I scans 202 GB of per-node syslog. Parallelizing
//! only *across nodes* (the original pipeline) load-balances badly: node
//! log sizes are highly skewed, so one huge file serializes the tail, and
//! the whole extraction then feeds a global sort barrier before Stage II.
//!
//! This module shards the work by **bytes, not nodes**: each node's lines
//! are split at line boundaries into chunks of roughly equal byte volume
//! sized to the `dr-par` worker pool, so a single large log no longer
//! bounds the critical path. Correctness hinges on the syslog scanner's
//! year-inference state (timestamps carry no year; the scanner bumps the
//! year on month regressions), which is inherently serial per node. The
//! classic trick applies because state evolution composes:
//!
//! 1. **Summarize** (parallel): for every chunk, fold the months of its
//!    state-updating lines (exactly the predicate the extraction loop
//!    uses, [`dr_logscan::extract::scanner_update_month`]) into
//!    `(first_month, internal_bumps, last_month)`.
//! 2. **Prefix-fold** (serial, O(#chunks)): compose the summaries in
//!    order to recover the scanner state a serial scan would hold at
//!    each chunk boundary.
//! 3. **Extract** (parallel): run each chunk through an extractor seeded
//!    with its replayed state ([`XidExtractor::with_scanner_state`]).
//!
//! The result is **bit-identical** to a serial per-node scan (tested, and
//! differentially pinned against the pre-optimization pipeline), for any
//! chunk size and worker count.
//!
//! Stage I → Stage II then avoids the global sort barrier: per-node record
//! streams are already time-ordered, so a k-way heap merge feeds the
//! incremental [`StreamCoalescer`] directly. If a pathological log yields
//! a non-monotonic stream (e.g. a day regression without a month rollover),
//! the code falls back to the batch path — batch and stream coalescing are
//! equivalent on ordered streams (property-tested), so both routes return
//! the same output, sorted by `(start, gpu, xid, detail)`.

use crate::coalesce::{coalesce, CoalesceConfig, CoalescedError};
use crate::source::{pull_wave, InMemorySource, LogChunk, LogSource, Prefetcher, Wave};
use crate::stream::StreamCoalescer;
use dr_logscan::extract::scanner_update_month;
use dr_logscan::{ExtractStats, XidExtractor};
use dr_xid::record::sort_records;
use dr_xid::{DataError, ErrorRecord, NodeId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One unit of Stage I work: a contiguous line range of one node's log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Index into the `node_logs` slice.
    pub node: usize,
    /// First line (inclusive).
    pub start: usize,
    /// Past-the-end line.
    pub end: usize,
    /// Total bytes of the lines in the chunk.
    pub bytes: u64,
}

/// Split every node's log at line boundaries into chunks of roughly
/// `target_bytes` each. Chunks partition each node's lines exactly (no
/// gaps, no overlaps, in order); a non-empty node always yields at least
/// one chunk.
pub fn plan_chunks(node_logs: &[(NodeId, Vec<String>)], target_bytes: u64) -> Vec<ChunkSpec> {
    let target = target_bytes.max(1);
    let mut chunks = Vec::new();
    for (node, (_, lines)) in node_logs.iter().enumerate() {
        let mut start = 0usize;
        let mut acc = 0u64;
        for (i, line) in lines.iter().enumerate() {
            acc += line.len() as u64 + 1; // +1 for the newline the file had
            if acc >= target {
                chunks.push(ChunkSpec {
                    node,
                    start,
                    end: i + 1,
                    bytes: acc,
                });
                start = i + 1;
                acc = 0;
            }
        }
        if start < lines.len() {
            chunks.push(ChunkSpec {
                node,
                start,
                end: lines.len(),
                bytes: acc,
            });
        }
    }
    chunks
}

/// How a chunk transforms year-inference state, independent of the state
/// it starts from: the month of its first state-updating line, the number
/// of month regressions strictly inside the chunk, and the month of its
/// last state-updating line. `None` when the chunk contains no
/// state-updating lines (identity transform).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StateSummary {
    pub first: u8,
    pub internal_bumps: u32,
    pub last: u8,
}

/// Phase 1: fold a chunk's state-updating months into a [`StateSummary`].
pub fn summarize_chunk(lines: &[String]) -> Option<StateSummary> {
    let mut summary: Option<StateSummary> = None;
    for line in lines {
        let Some(month) = scanner_update_month(line) else {
            continue;
        };
        match &mut summary {
            None => {
                summary = Some(StateSummary {
                    first: month,
                    internal_bumps: 0,
                    last: month,
                })
            }
            Some(s) => {
                if month < s.last {
                    s.internal_bumps += 1;
                }
                s.last = month;
            }
        }
    }
    summary
}

/// Phase 2 composition: the state after a chunk, given the state before it.
fn apply_summary(state: (i32, u8), summary: Option<StateSummary>) -> (i32, u8) {
    match summary {
        None => state,
        Some(s) => {
            let (mut year, last_month) = state;
            if s.first < last_month {
                year += 1;
            }
            year += s.internal_bumps as i32;
            (year, s.last)
        }
    }
}

/// Default chunk size: enough chunks to keep the worker pool load-balanced
/// (4 per worker), but no smaller than 64 KiB so per-chunk overhead stays
/// negligible at scale.
fn default_target_bytes(total: u64, workers: usize) -> u64 {
    (total / ((workers as u64) * 4).max(1)).clamp(64 * 1024, u64::MAX)
}

/// Chunk-size target when the source cannot report its total size
/// (generative sources): large enough that per-chunk overhead vanishes,
/// small enough that a wave stays comfortably resident.
const DEFAULT_STREAM_TARGET: u64 = 256 * 1024;

/// Wave sizing for one driver run, derived from a *single*
/// `dr_par::max_workers()` snapshot. The chunk-size target and the wave
/// budget previously each read the worker count independently; if a
/// worker override changed between the two reads they could disagree,
/// skewing the budget. Capturing both here makes the
/// target/budget/worker triple self-consistent by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaveConfig {
    /// Worker-pool width the sizing was derived from.
    pub workers: usize,
    /// Per-chunk byte target handed to [`LogSource::next_chunk`].
    pub target_bytes: u64,
    /// Per-wave byte budget: `target_bytes × workers`.
    pub wave_budget: u64,
}

impl WaveConfig {
    /// Sizing from an explicit chunk target and/or a source's total-size
    /// hint (the explicit target wins; with neither, the streaming
    /// default applies).
    pub fn new(target_bytes: Option<u64>, total_hint: Option<u64>) -> WaveConfig {
        let workers = dr_par::max_workers();
        let target = target_bytes
            .or_else(|| total_hint.map(|t| default_target_bytes(t, workers)))
            .unwrap_or(DEFAULT_STREAM_TARGET)
            .max(1);
        WaveConfig {
            workers,
            target_bytes: target,
            wave_budget: target.saturating_mul(workers as u64),
        }
    }

    /// [`WaveConfig::new`] with the hint taken from `source`.
    pub fn for_source(source: &dyn LogSource<'_>, target_bytes: Option<u64>) -> WaveConfig {
        WaveConfig::new(target_bytes, source.total_bytes_hint())
    }
}

/// Sharded Stage I: extract every node's records with byte-balanced
/// parallel chunks and replayed scanner state. Returns one time-ordered
/// record stream per node (same order as `node_logs`) plus merged
/// extraction statistics. Bit-identical to a serial per-node scan for any
/// `target_bytes`.
pub fn extract_sharded(
    node_logs: &[(NodeId, Vec<String>)],
    target_bytes: Option<u64>,
) -> (Vec<Vec<ErrorRecord>>, ExtractStats) {
    extract_sharded_observed(node_logs, target_bytes, &dr_obs::MetricsSink::disabled())
}

/// [`extract_sharded`] with observability: shard/extract spans, byte and
/// chunk counters, and per-chunk throughput histograms recorded into
/// `sink`. The returned records and stats are exactly those of
/// `extract_sharded` — the sink is write-only and never read back.
pub fn extract_sharded_observed(
    node_logs: &[(NodeId, Vec<String>)],
    target_bytes: Option<u64>,
    sink: &dr_obs::MetricsSink,
) -> (Vec<Vec<ErrorRecord>>, ExtractStats) {
    let mut source = InMemorySource::new(node_logs);
    match extract_source_observed(&mut source, target_bytes, sink) {
        Ok(r) => r,
        Err(_) => unreachable!("in-memory sources are infallible"),
    }
}

/// Streaming sharded Stage I over any [`LogSource`] with a disabled sink.
pub fn extract_source<'s>(
    source: &mut dyn LogSource<'s>,
    target_bytes: Option<u64>,
) -> Result<(Vec<Vec<ErrorRecord>>, ExtractStats), DataError> {
    extract_source_observed(source, target_bytes, &dr_obs::MetricsSink::disabled())
}

/// The streaming heart of Stage I: pull line-aligned chunks from `source`
/// one *wave* (≈ workers × target bytes) at a time, run the
/// summarize → prefix-fold → extract phases on each wave, and drop the
/// wave's text before pulling the next. Year-inference state composes
/// exactly across chunk boundaries, so the wave structure is invisible in
/// the output: records and stats are bit-identical to a serial per-node
/// scan of the same lines, for any `target_bytes`, wave size, or worker
/// count. Peak resident log text is one wave (recorded on the sink as the
/// `peak_resident_bytes` gauge), which is what lets the analysis host
/// stay at O(workers × chunk_bytes) on a 202 GB corpus.
pub fn extract_source_observed<'s>(
    source: &mut dyn LogSource<'s>,
    target_bytes: Option<u64>,
    sink: &dr_obs::MetricsSink,
) -> Result<(Vec<Vec<ErrorRecord>>, ExtractStats), DataError> {
    use dr_obs::{Counter, Stage};
    let cfg = WaveConfig::for_source(&*source, target_bytes);
    let mut driver = WaveDriver::new(source.nodes().len());
    loop {
        // Pull one wave. This is the only place log text enters memory;
        // the gauge records the high-water mark across waves (with no
        // prefetch, exactly one wave is ever resident).
        let wave = {
            let _span = sink.span(Stage::Shard, "total");
            pull_wave(source, cfg.target_bytes, cfg.wave_budget)?
        };
        let Some(wave) = wave else {
            break;
        };
        sink.add(Stage::Shard, Counter::Bytes, wave.bytes);
        sink.add(Stage::Shard, Counter::Chunks, wave.chunks.len() as u64);
        sink.gauge_max(Stage::Extract, "peak_resident_bytes", wave.bytes as f64);
        driver.process_wave(&wave, sink);
    }
    Ok(driver.finish())
}

/// [`extract_source_observed`] with I/O-overlapped wave prefetch: a
/// [`Prefetcher`] thread pulls wave *N+1* from `source` while the worker
/// pool extracts wave *N*. Results are bit-identical to the synchronous
/// path — wave boundaries come from the same [`pull_wave`] and the
/// per-wave processing is the same [`WaveDriver`] — only the overlap (and
/// therefore the `peak_resident_bytes` bound, ≤ 2 waves instead of 1)
/// differs.
pub fn extract_source_prefetch_observed<'s>(
    source: &mut (dyn LogSource<'s> + Send),
    target_bytes: Option<u64>,
    sink: &dr_obs::MetricsSink,
) -> Result<(Vec<Vec<ErrorRecord>>, ExtractStats), DataError> {
    use dr_obs::{Counter, Stage};
    let cfg = WaveConfig::for_source(&*source, target_bytes);
    let n_nodes = source.nodes().len();
    Prefetcher::new(source, cfg.target_bytes, cfg.wave_budget).run(|waves| {
        let mut driver = WaveDriver::new(n_nodes);
        loop {
            // The span now measures only the *unhidden* part of I/O: time
            // spent waiting on the prefetch thread.
            let wave = {
                let _span = sink.span(Stage::Shard, "total");
                waves.next_wave()?
            };
            let Some(wave) = wave else {
                break;
            };
            sink.add(Stage::Shard, Counter::Bytes, wave.bytes);
            sink.add(Stage::Shard, Counter::Chunks, wave.chunks.len() as u64);
            sink.gauge_max(
                Stage::Extract,
                "peak_resident_bytes",
                waves.peak_resident_bytes() as f64,
            );
            driver.process_wave(&wave, sink);
        }
        Ok(driver.finish())
    })
}

/// [`extract_source_prefetch_observed`] with a disabled sink.
pub fn extract_source_prefetch<'s>(
    source: &mut (dyn LogSource<'s> + Send),
    target_bytes: Option<u64>,
) -> Result<(Vec<Vec<ErrorRecord>>, ExtractStats), DataError> {
    extract_source_prefetch_observed(source, target_bytes, &dr_obs::MetricsSink::disabled())
}

/// Per-run extraction state shared by the synchronous and prefetching
/// drivers: the accumulating per-node record streams, the scanner state
/// carried across waves, and merged stats. Both drivers feed waves (from
/// the same [`pull_wave`] boundary rule) through the same
/// [`WaveDriver::process_wave`], which is what makes prefetch on/off
/// bit-identical by construction.
struct WaveDriver {
    per_node: Vec<Vec<ErrorRecord>>,
    /// Scanner state carried across waves, per node: (year, last month).
    per_node_state: Vec<(i32, u8)>,
    stats: ExtractStats,
}

impl WaveDriver {
    fn new(n_nodes: usize) -> WaveDriver {
        let mut per_node: Vec<Vec<ErrorRecord>> = Vec::new();
        per_node.resize_with(n_nodes, Vec::new);
        WaveDriver {
            per_node,
            per_node_state: vec![(2022, 1); n_nodes],
            stats: ExtractStats::default(),
        }
    }

    /// Run the summarize → prefix-fold → extract phases on one wave and
    /// fold the output into the per-node streams.
    fn process_wave(&mut self, wave: &Wave<'_>, sink: &dr_obs::MetricsSink) {
        use dr_obs::Stage;
        let chunks = &wave.chunks;
        let span = sink.span(Stage::Extract, "total");
        let stats_before = self.stats;

        // Phase 1 (parallel): per-chunk state summaries.
        let summaries: Vec<Option<StateSummary>> = {
            let _child = span.child("summarize");
            dr_par::par_map(chunks, |c| summarize_chunk(&c.lines))
        };

        // Phase 2 (serial, cheap): replay the incoming state of every
        // chunk, continuing from where the previous wave left each node.
        let work: Vec<(&LogChunk<'_>, (i32, u8))> = {
            let _child = span.child("prefix-fold");
            let mut incoming: Vec<(i32, u8)> = Vec::with_capacity(chunks.len());
            for (c, summary) in chunks.iter().zip(&summaries) {
                incoming.push(self.per_node_state[c.node]);
                self.per_node_state[c.node] =
                    apply_summary(self.per_node_state[c.node], *summary);
            }
            chunks.iter().zip(incoming).collect()
        };

        // Phase 3 (parallel): extract each chunk from its replayed state.
        // The per-chunk observed wrapper records chunk spans, line/byte
        // counters, and a MB/s histogram; with a disabled sink it is the
        // plain `extract_all` call the pre-observability code made.
        let extracted: Vec<(Vec<ErrorRecord>, ExtractStats)> = {
            let _child = span.child("extract-chunks");
            dr_par::par_map(&work, |(c, (year, last_month))| {
                let mut ex = XidExtractor::with_scanner_state(*year, *last_month);
                let recs = ex.extract_all_observed(c.lines.iter().map(|s| s.as_str()), sink);
                (recs, ex.stats())
            })
        };

        // Stitch the wave back into per-node streams (par_map preserves
        // input order, and chunks are node-major and in-order per node).
        for ((c, _), (mut recs, s)) in work.iter().zip(extracted) {
            self.per_node[c.node].append(&mut recs);
            self.stats.merge(&s);
        }

        // Per-wave prefilter telemetry: what fraction of this wave's
        // lines survived the literal needle scan. Diagnosing throughput
        // spread between corpora (noise-heavy vs XID-dense) starts here.
        if sink.is_enabled() {
            let lines = self.stats.lines - stats_before.lines;
            if lines > 0 {
                let hits = self.stats.prefilter_hits - stats_before.prefilter_hits;
                sink.observe(
                    Stage::Extract,
                    "wave_prefilter_hit_pct",
                    100.0 * hits as f64 / lines as f64,
                );
            }
        }
    }

    fn finish(self) -> (Vec<Vec<ErrorRecord>>, ExtractStats) {
        (self.per_node, self.stats)
    }
}

/// Stage I/II handoff: k-way merge the per-node time-ordered streams into
/// the incremental coalescer, avoiding the global record sort. Returns
/// exactly what batch [`coalesce`] would, sorted by
/// `(start, gpu, xid, detail)`; non-monotonic streams (malformed logs)
/// fall back to the batch path.
pub fn merge_and_coalesce(
    per_node: Vec<Vec<ErrorRecord>>,
    cfg: CoalesceConfig,
) -> Vec<CoalescedError> {
    merge_and_coalesce_observed(per_node, cfg, &dr_obs::MetricsSink::disabled())
}

/// [`merge_and_coalesce`] with observability: a `coalesce/total` span plus
/// input record and output episode counters. Output is exactly that of
/// `merge_and_coalesce` — the sink is write-only.
pub fn merge_and_coalesce_observed(
    per_node: Vec<Vec<ErrorRecord>>,
    cfg: CoalesceConfig,
    sink: &dr_obs::MetricsSink,
) -> Vec<CoalescedError> {
    use dr_obs::{Counter, Stage};
    let _span = sink.span(Stage::Coalesce, "total");
    let n_records: u64 = per_node.iter().map(|r| r.len() as u64).sum();
    let out = merge_and_coalesce_inner(per_node, cfg);
    sink.add(Stage::Coalesce, Counter::Records, n_records);
    sink.add(Stage::Coalesce, Counter::Episodes, out.len() as u64);
    out
}

fn merge_and_coalesce_inner(
    per_node: Vec<Vec<ErrorRecord>>,
    cfg: CoalesceConfig,
) -> Vec<CoalescedError> {
    let monotonic = per_node
        .iter()
        .all(|recs| recs.windows(2).all(|w| w[0].at <= w[1].at));
    if !monotonic {
        let mut records: Vec<ErrorRecord> = per_node.into_iter().flatten().collect();
        sort_records(&mut records);
        return coalesce(&records, cfg);
    }

    // Heap of (next timestamp, node index) over the per-node cursors;
    // the node index tie-break keeps the merge deterministic.
    let mut cursors = vec![0usize; per_node.len()];
    let mut heap: BinaryHeap<Reverse<(dr_xid::Timestamp, usize)>> = per_node
        .iter()
        .enumerate()
        .filter_map(|(i, recs)| recs.first().map(|r| Reverse((r.at, i))))
        .collect();

    let mut stream = StreamCoalescer::new(cfg);
    let mut out = Vec::new();
    while let Some(Reverse((_, node))) = heap.pop() {
        let rec = &per_node[node][cursors[node]];
        out.extend(stream.push(rec));
        cursors[node] += 1;
        if let Some(next) = per_node[node].get(cursors[node]) {
            heap.push(Reverse((next.at, node)));
        }
    }
    out.extend(stream.finish());
    // Batch output order, so the two routes are interchangeable.
    out.sort_by_key(|e| (e.start, e.gpu, e.xid, e.detail));
    out
}

/// The full sharded Stage I + streaming Stage II front half of the
/// pipeline: text in, coalesced errors and extraction stats out.
pub fn extract_and_coalesce(
    node_logs: &[(NodeId, Vec<String>)],
    cfg: CoalesceConfig,
    target_bytes: Option<u64>,
) -> (Vec<CoalescedError>, ExtractStats) {
    extract_and_coalesce_observed(node_logs, cfg, target_bytes, &dr_obs::MetricsSink::disabled())
}

/// [`extract_and_coalesce`] with observability across both stages.
/// Results are bit-identical whether the sink records or is disabled.
pub fn extract_and_coalesce_observed(
    node_logs: &[(NodeId, Vec<String>)],
    cfg: CoalesceConfig,
    target_bytes: Option<u64>,
    sink: &dr_obs::MetricsSink,
) -> (Vec<CoalescedError>, ExtractStats) {
    let (per_node, stats) = extract_sharded_observed(node_logs, target_bytes, sink);
    (merge_and_coalesce_observed(per_node, cfg, sink), stats)
}

/// Streaming front half over any [`LogSource`]: wave-based sharded
/// extraction, then the k-way merge into the streaming coalescer. Only
/// records (not text) survive Stage I, so memory stays bounded by one
/// wave of chunks however large the corpus.
pub fn extract_and_coalesce_source<'s>(
    source: &mut dyn LogSource<'s>,
    cfg: CoalesceConfig,
    target_bytes: Option<u64>,
) -> Result<(Vec<CoalescedError>, ExtractStats), DataError> {
    extract_and_coalesce_source_observed(source, cfg, target_bytes, &dr_obs::MetricsSink::disabled())
}

/// [`extract_and_coalesce_source`] with observability across both stages.
pub fn extract_and_coalesce_source_observed<'s>(
    source: &mut dyn LogSource<'s>,
    cfg: CoalesceConfig,
    target_bytes: Option<u64>,
    sink: &dr_obs::MetricsSink,
) -> Result<(Vec<CoalescedError>, ExtractStats), DataError> {
    let (per_node, stats) = extract_source_observed(source, target_bytes, sink)?;
    Ok((merge_and_coalesce_observed(per_node, cfg, sink), stats))
}

/// [`extract_and_coalesce_source_observed`] on the prefetching Stage I
/// driver: same coalesced output, I/O overlapped with extraction.
pub fn extract_and_coalesce_source_prefetch_observed<'s>(
    source: &mut (dyn LogSource<'s> + Send),
    cfg: CoalesceConfig,
    target_bytes: Option<u64>,
    sink: &dr_obs::MetricsSink,
) -> Result<(Vec<CoalescedError>, ExtractStats), DataError> {
    let (per_node, stats) = extract_source_prefetch_observed(source, target_bytes, sink)?;
    Ok((merge_and_coalesce_observed(per_node, cfg, sink), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::syslog::{format_line, format_noise_line};
    use dr_xid::{Duration, ErrorDetail, GpuId, Timestamp, Xid};

    /// A rollover-heavy multi-node synthetic campaign: XID bursts, noise,
    /// and garbage, with several year rollovers per node.
    fn synthetic_logs(nodes: u32, events_per_node: u64) -> Vec<(NodeId, Vec<String>)> {
        (0..nodes)
            .map(|n| {
                let mut lines = Vec::new();
                let mut t = Timestamp::EPOCH + Duration::from_hours(n as u64);
                for k in 0..events_per_node {
                    let xid = Xid::ALL[(k % Xid::ALL.len() as u64) as usize];
                    let rec = ErrorRecord::new(
                        t,
                        GpuId::at_slot(NodeId(n), (k % 8) as usize),
                        xid,
                        ErrorDetail::new((k % 5) as u16, (k % 11) as u32),
                    );
                    lines.push(format_line(&rec, k as u32));
                    if k % 3 == 0 {
                        lines.push(format_noise_line(t, NodeId(n), (k % 5) as u8));
                    }
                    if k % 17 == 0 {
                        lines.push("stray line without a header".to_string());
                    }
                    // ~100 days between some events: forces rollovers.
                    t = t + Duration::from_hours(if k % 7 == 0 { 2_400 } else { 3 });
                }
                (NodeId(n), lines)
            })
            .collect()
    }

    /// Reference: serial per-node extraction with one scanner per node.
    fn serial_extract(
        node_logs: &[(NodeId, Vec<String>)],
    ) -> (Vec<Vec<ErrorRecord>>, ExtractStats) {
        let mut stats = ExtractStats::default();
        let per_node = node_logs
            .iter()
            .map(|(_, lines)| {
                let mut ex = XidExtractor::new();
                let recs = ex.extract_all(lines.iter().map(|s| s.as_str()));
                stats.merge(&ex.stats());
                recs
            })
            .collect();
        (per_node, stats)
    }

    #[test]
    fn chunks_partition_lines_exactly() {
        let logs = synthetic_logs(3, 40);
        for target in [1, 37, 1_000, u64::MAX] {
            let chunks = plan_chunks(&logs, target);
            for (node, (_, lines)) in logs.iter().enumerate() {
                let mine: Vec<_> = chunks.iter().filter(|c| c.node == node).collect();
                assert!(!mine.is_empty());
                assert_eq!(mine[0].start, 0);
                assert_eq!(mine.last().unwrap().end, lines.len());
                for w in mine.windows(2) {
                    assert_eq!(w[0].end, w[1].start, "gap/overlap at target {target}");
                }
            }
        }
    }

    #[test]
    fn chunk_bytes_are_balanced() {
        let logs = synthetic_logs(1, 300);
        let total: u64 = logs[0].1.iter().map(|l| l.len() as u64 + 1).sum();
        let chunks = plan_chunks(&logs, total / 8);
        assert!(chunks.len() >= 6, "got {} chunks", chunks.len());
        // Every chunk but the last is within one line of the target.
        for c in &chunks[..chunks.len() - 1] {
            assert!(c.bytes >= total / 8);
            assert!(c.bytes < total / 8 + 200);
        }
    }

    #[test]
    fn sharded_extraction_is_bit_identical_to_serial() {
        let logs = synthetic_logs(3, 60);
        let (serial, serial_stats) = serial_extract(&logs);
        // Chunk sizes from "one line per chunk" up to "one chunk per node".
        for target in [1, 64, 512, 4 * 1024, u64::MAX] {
            let (sharded, stats) = extract_sharded(&logs, Some(target));
            assert_eq!(sharded, serial, "divergence at target_bytes={target}");
            assert_eq!(stats, serial_stats, "stats divergence at {target}");
        }
    }

    #[test]
    fn sharded_extraction_is_worker_count_invariant() {
        let logs = synthetic_logs(2, 50);
        dr_par::set_worker_override(Some(1));
        let (one, s1) = extract_sharded(&logs, Some(256));
        dr_par::set_worker_override(Some(8));
        let (eight, s8) = extract_sharded(&logs, Some(256));
        dr_par::set_worker_override(None);
        assert_eq!(one, eight);
        assert_eq!(s1, s8);
    }

    #[test]
    fn state_summary_composition_matches_direct_scan() {
        // The summary fold is exactly what a serial scanner does.
        let logs = synthetic_logs(1, 80);
        let lines = &logs[0].1;
        let mut ex = XidExtractor::new();
        let _ = ex.extract_all(lines.iter().map(|s| s.as_str()));
        let direct = ex.scanner_state();

        let mut state = (2022, 1u8);
        for chunk in lines.chunks(7) {
            state = apply_summary(state, summarize_chunk(chunk));
        }
        assert_eq!(state, direct);
    }

    #[test]
    fn merge_and_coalesce_matches_batch() {
        let logs = synthetic_logs(4, 50);
        let (per_node, _) = extract_sharded(&logs, Some(512));
        let mut all: Vec<ErrorRecord> = per_node.iter().flatten().copied().collect();
        sort_records(&mut all);
        let batch = coalesce(&all, CoalesceConfig::default());
        let streamed = merge_and_coalesce(per_node, CoalesceConfig::default());
        assert_eq!(streamed, batch);
    }

    #[test]
    fn non_monotonic_streams_fall_back_to_batch() {
        // A day regression without a month rollover makes a node stream
        // non-monotonic; the merge must detect it and still match batch.
        let rec = |secs: u64, node: u32| {
            ErrorRecord::new(
                Timestamp::from_secs(secs),
                GpuId::at_slot(NodeId(node), 0),
                Xid::MmuError,
                ErrorDetail::NONE,
            )
        };
        let per_node = vec![
            vec![rec(100, 1), rec(50, 1), rec(120, 1)],
            vec![rec(10, 2), rec(60, 2)],
        ];
        let mut all: Vec<ErrorRecord> = per_node.iter().flatten().copied().collect();
        sort_records(&mut all);
        let batch = coalesce(&all, CoalesceConfig::default());
        let merged = merge_and_coalesce(per_node, CoalesceConfig::default());
        assert_eq!(merged, batch);
    }
}
