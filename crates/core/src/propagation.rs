//! Error propagation analysis (Section 3.2, Figures 5–7).
//!
//! The propagation probability from error e1 to e2 is the fraction of e1
//! occurrences followed by an e2 within Δt — on the same GPU (intra-GPU)
//! or on a different GPU of the same node (inter-GPU). The time between
//! the two is the propagation time; short times suggest causality.

use crate::coalesce::CoalescedError;
use dr_stats::OnlineStats;
use dr_xid::{Duration, GpuId, NodeId, Xid};
use std::collections::BTreeMap;

/// One edge of a propagation graph.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PropagationEdge {
    pub from: Xid,
    pub to: Xid,
    /// P(e_to follows | e_from occurred).
    pub probability: f64,
    /// Mean propagation time in seconds.
    pub mean_delay_s: f64,
    /// Number of observed propagation events.
    pub count: u64,
}

/// NVLink inter-GPU involvement (Figure 6), measured per error: how many
/// GPUs of the node threw NVLink errors within ±Δt of each error.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NvlinkSpread {
    /// NVLink errors examined.
    pub incidents: u64,
    /// Fraction touching exactly one GPU (paper: 84 %).
    pub single_gpu: f64,
    /// Fraction touching two or more GPUs (16 %).
    pub multi_gpu: f64,
    /// Fraction touching four or more GPUs (5 %).
    pub four_plus: f64,
    /// Incidents touching all eight GPUs of an 8-way node (35 errors).
    pub all_eight: u64,
}

/// The full propagation analysis result.
#[derive(Clone, Debug, Default)]
pub struct PropagationAnalysis {
    /// Same-GPU edges, sorted by (from, descending probability).
    pub intra: Vec<PropagationEdge>,
    /// Cross-GPU (same node) edges.
    pub inter: Vec<PropagationEdge>,
    /// P(no successor within Δt | e) per XID — terminal errors.
    pub terminal: BTreeMap<Xid, f64>,
    /// P(no predecessor within Δt | e) per XID — the paper's "99 % of GSP
    /// errors appeared in isolation".
    pub isolated: BTreeMap<Xid, f64>,
    /// Occurrences per XID (edge denominators).
    pub sources: BTreeMap<Xid, u64>,
    pub nvlink: NvlinkSpread,
}

impl PropagationAnalysis {
    /// Probability of the intra-GPU edge `from → to` (0 if absent).
    pub fn intra_probability(&self, from: Xid, to: Xid) -> f64 {
        self.intra
            .iter()
            .find(|e| e.from == from && e.to == to)
            .map(|e| e.probability)
            .unwrap_or(0.0)
    }
}

/// Run the propagation analysis with window Δt.
pub fn analyze(errors: &[CoalescedError], window: Duration) -> PropagationAnalysis {
    analyze_with_spread_window(errors, window, Duration::from_secs(10))
}

/// [`analyze`] with an explicit NVLink-involvement window (the ±Δt used
/// for the Figure 6 multi-GPU statistic; tighter than the propagation
/// window so chain repetitions on one GPU don't inflate the involvement).
pub fn analyze_with_spread_window(
    errors: &[CoalescedError],
    window: Duration,
    spread_window: Duration,
) -> PropagationAnalysis {
    // Per-GPU and per-node indices in input order; the finish step sorts
    // them by start time.
    let mut by_gpu: BTreeMap<GpuId, Vec<usize>> = BTreeMap::new();
    let mut by_node: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (i, e) in errors.iter().enumerate() {
        by_gpu.entry(e.gpu).or_default().push(i);
        by_node.entry(e.gpu.node).or_default().push(i);
    }
    finish_propagation(errors, by_gpu, by_node, window, spread_window)
}

/// The shared back half of the propagation analysis: takes the per-GPU /
/// per-node index lists (arrival order — this function sorts them), so
/// the batch front door above and the incremental
/// [`crate::engine::PropagationAcc`] produce bit-identical results from
/// bit-identical state. Ordered maps throughout: the Welford delay
/// accumulators are float-summation order sensitive, so iteration must
/// be reproducible.
pub(crate) fn finish_propagation(
    errors: &[CoalescedError],
    mut by_gpu: BTreeMap<GpuId, Vec<usize>>,
    mut by_node: BTreeMap<NodeId, Vec<usize>>,
    window: Duration,
    spread_window: Duration,
) -> PropagationAnalysis {
    for v in by_gpu.values_mut() {
        v.sort_by_key(|&i| errors[i].start);
    }
    for v in by_node.values_mut() {
        v.sort_by_key(|&i| errors[i].start);
    }

    let mut sources: BTreeMap<Xid, u64> = BTreeMap::new();
    let mut intra_edges: BTreeMap<(Xid, Xid), (u64, OnlineStats)> = BTreeMap::new();
    let mut inter_edges: BTreeMap<(Xid, Xid), (u64, OnlineStats)> = BTreeMap::new();
    let mut terminal_counts: BTreeMap<Xid, u64> = BTreeMap::new();
    let mut isolated_counts: BTreeMap<Xid, u64> = BTreeMap::new();

    // Intra-GPU pass.
    for list in by_gpu.values() {
        for (pos, &i) in list.iter().enumerate() {
            let e1 = &errors[i];
            *sources.entry(e1.xid).or_default() += 1;

            // Successor: first error strictly after e1.start within Δt.
            let successor = list[pos + 1..]
                .iter()
                .map(|&j| &errors[j])
                .find(|e2| e2.start > e1.start);
            match successor {
                Some(e2) if e2.start - e1.start <= window => {
                    let delay = (e2.start - e1.start).as_secs_f64();
                    let entry = intra_edges.entry((e1.xid, e2.xid)).or_insert((0, OnlineStats::new()));
                    entry.0 += 1;
                    entry.1.push(delay);
                }
                _ => {
                    *terminal_counts.entry(e1.xid).or_default() += 1;
                }
            }

            // Predecessor: any earlier error within Δt (isolation check).
            let has_predecessor = list[..pos]
                .iter()
                .rev()
                .map(|&j| &errors[j])
                .take_while(|e0| e1.start - e0.start <= window)
                .next()
                .is_some();
            if !has_predecessor {
                *isolated_counts.entry(e1.xid).or_default() += 1;
            }
        }
    }

    // Inter-GPU pass: first error on a *different* GPU of the same node
    // within Δt after e1.
    for list in by_node.values() {
        for (pos, &i) in list.iter().enumerate() {
            let e1 = &errors[i];
            let successor = list[pos + 1..]
                .iter()
                .map(|&j| &errors[j])
                .take_while(|e2| e2.start - e1.start <= window)
                .find(|e2| e2.gpu != e1.gpu);
            if let Some(e2) = successor {
                let delay = (e2.start - e1.start).as_secs_f64();
                let entry = inter_edges.entry((e1.xid, e2.xid)).or_insert((0, OnlineStats::new()));
                entry.0 += 1;
                entry.1.push(delay);
            }
        }
    }

    let to_edges = |map: BTreeMap<(Xid, Xid), (u64, OnlineStats)>| -> Vec<PropagationEdge> {
        let mut v: Vec<PropagationEdge> = map
            .into_iter()
            .map(|((from, to), (count, delays))| PropagationEdge {
                from,
                to,
                probability: count as f64 / *sources.get(&from).unwrap_or(&1).max(&1) as f64,
                mean_delay_s: delays.mean(),
                count,
            })
            .collect();
        v.sort_by(|a, b| {
            a.from
                .cmp(&b.from)
                .then(b.probability.total_cmp(&a.probability))
                .then(a.to.cmp(&b.to))
        });
        v
    };

    let ratio = |counts: &BTreeMap<Xid, u64>| -> BTreeMap<Xid, f64> {
        counts
            .iter()
            .map(|(&xid, &c)| (xid, c as f64 / *sources.get(&xid).unwrap_or(&1).max(&1) as f64))
            .collect()
    };

    PropagationAnalysis {
        intra: to_edges(intra_edges),
        inter: to_edges(inter_edges),
        terminal: ratio(&terminal_counts),
        isolated: ratio(&isolated_counts),
        sources,
        nvlink: nvlink_spread(errors, spread_window),
    }
}

/// NVLink multi-GPU involvement, measured **per error** as the paper does
/// ("84 % of the ~3,000 NVLink errors did not propagate across GPUs"):
/// for each NVLink error, count the distinct GPUs of its node that throw
/// NVLink errors within Δt *after* it (itself included) — i.e. whether
/// this error propagated across GPUs.
pub fn nvlink_spread(errors: &[CoalescedError], window: Duration) -> NvlinkSpread {
    let mut by_node: BTreeMap<_, Vec<&CoalescedError>> = BTreeMap::new();
    for e in errors.iter().filter(|e| e.xid == Xid::NvlinkError) {
        by_node.entry(e.gpu.node).or_default().push(e);
    }

    let mut total = 0u64;
    let mut single = 0u64;
    let mut multi = 0u64;
    let mut four_plus = 0u64;
    let mut all_eight = 0u64;
    for list in by_node.values_mut() {
        list.sort_by_key(|e| e.start);
        for (i, e) in list.iter().enumerate() {
            let mut gpus: Vec<_> = vec![e.gpu];
            for other in &list[i + 1..] {
                if other.start - e.start > window {
                    break;
                }
                if !gpus.contains(&other.gpu) {
                    gpus.push(other.gpu);
                }
            }
            total += 1;
            match gpus.len() {
                1 => single += 1,
                n => {
                    multi += 1;
                    if n >= 4 {
                        four_plus += 1;
                    }
                    if n >= 8 {
                        all_eight += 1;
                    }
                }
            }
        }
    }
    let denom = total.max(1) as f64;
    NvlinkSpread {
        incidents: total,
        single_gpu: single as f64 / denom,
        multi_gpu: multi as f64 / denom,
        four_plus: four_plus as f64 / denom,
        all_eight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{ErrorDetail, GpuId, NodeId, Timestamp};

    fn err_at(xid: Xid, secs: f64, node: u32, slot: usize) -> CoalescedError {
        let start = Timestamp::EPOCH + Duration::from_secs_f64(secs);
        CoalescedError {
            gpu: GpuId::at_slot(NodeId(node), slot),
            xid,
            detail: ErrorDetail::NONE,
            start,
            last: start,
            merged: 1,
        }
    }

    const W: Duration = Duration::from_secs(60);

    #[test]
    fn detects_pmu_to_mmu_edge() {
        let mut errors = Vec::new();
        for k in 0..100 {
            let base = k as f64 * 10_000.0;
            errors.push(err_at(Xid::PmuSpiError, base, 1, 0));
            if k < 82 {
                errors.push(err_at(Xid::MmuError, base + 1.0, 1, 0));
            }
        }
        let a = analyze(&errors, W);
        let p = a.intra_probability(Xid::PmuSpiError, Xid::MmuError);
        assert!((p - 0.82).abs() < 1e-9, "p {p}");
        let edge = a
            .intra
            .iter()
            .find(|e| e.from == Xid::PmuSpiError && e.to == Xid::MmuError)
            .unwrap();
        assert!((edge.mean_delay_s - 1.0).abs() < 1e-9);
        assert_eq!(edge.count, 82);
    }

    #[test]
    fn terminal_errors_have_no_successor() {
        let errors = vec![
            err_at(Xid::GspRpcTimeout, 0.0, 1, 0),
            err_at(Xid::GspRpcTimeout, 10_000.0, 1, 0),
        ];
        let a = analyze(&errors, W);
        assert_eq!(a.terminal[&Xid::GspRpcTimeout], 1.0);
        assert!(a.intra.is_empty());
    }

    #[test]
    fn isolation_requires_no_predecessor() {
        let errors = vec![
            err_at(Xid::PmuSpiError, 0.0, 1, 0),
            err_at(Xid::MmuError, 1.0, 1, 0), // has a predecessor
            err_at(Xid::MmuError, 10_000.0, 1, 0), // isolated
        ];
        let a = analyze(&errors, W);
        assert_eq!(a.isolated[&Xid::MmuError], 0.5);
        assert_eq!(a.isolated[&Xid::PmuSpiError], 1.0);
    }

    #[test]
    fn inter_gpu_edge_requires_same_node_different_gpu() {
        let errors = vec![
            err_at(Xid::NvlinkError, 0.0, 1, 0),
            err_at(Xid::NvlinkError, 2.0, 1, 1),   // same node, other GPU
            err_at(Xid::NvlinkError, 4.0, 2, 0),   // different node: ignored
        ];
        let a = analyze(&errors, W);
        let edge = a
            .inter
            .iter()
            .find(|e| e.from == Xid::NvlinkError && e.to == Xid::NvlinkError)
            .unwrap();
        assert_eq!(edge.count, 1);
        assert!((edge.mean_delay_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn successor_beyond_window_is_terminal() {
        let errors = vec![
            err_at(Xid::MmuError, 0.0, 1, 0),
            err_at(Xid::MmuError, 120.0, 1, 0),
        ];
        let a = analyze(&errors, W);
        assert_eq!(a.terminal[&Xid::MmuError], 1.0);
    }

    #[test]
    fn nvlink_spread_counts_distinct_gpus() {
        let errors = vec![
            // Incident A: 3 GPUs on node 1.
            err_at(Xid::NvlinkError, 0.0, 1, 0),
            err_at(Xid::NvlinkError, 5.0, 1, 1),
            err_at(Xid::NvlinkError, 10.0, 1, 2),
            // Incident B: 1 GPU on node 1 (far later).
            err_at(Xid::NvlinkError, 100_000.0, 1, 0),
            // Incident C: all 8 GPUs on node 2.
            err_at(Xid::NvlinkError, 0.0, 2, 0),
            err_at(Xid::NvlinkError, 1.0, 2, 1),
            err_at(Xid::NvlinkError, 2.0, 2, 2),
            err_at(Xid::NvlinkError, 3.0, 2, 3),
            err_at(Xid::NvlinkError, 4.0, 2, 4),
            err_at(Xid::NvlinkError, 5.0, 2, 5),
            err_at(Xid::NvlinkError, 6.0, 2, 6),
            err_at(Xid::NvlinkError, 7.0, 2, 7),
        ];
        let s = nvlink_spread(&errors, W);
        // Per-error, forward-looking accounting: 12 NVLink errors total.
        // Node 1: error@0 sees 3 GPUs ahead, error@5 sees 2, error@10 and
        // the late error see only themselves. Node 2's cascade: the k-th
        // of 8 errors sees (8-k) distinct GPUs ahead of it.
        assert_eq!(s.incidents, 12);
        assert!((s.single_gpu - 3.0 / 12.0).abs() < 1e-9);
        assert!((s.multi_gpu - 9.0 / 12.0).abs() < 1e-9);
        assert!((s.four_plus - 5.0 / 12.0).abs() < 1e-9, "{}", s.four_plus);
        assert_eq!(s.all_eight, 1);
    }

    #[test]
    fn empty_input_is_empty_analysis() {
        let a = analyze(&[], W);
        assert!(a.intra.is_empty());
        assert!(a.sources.is_empty());
        assert_eq!(a.nvlink.incidents, 0);
    }
}
