//! Error statistics: counts, MTBE, persistence summaries (Table 1) and
//! lost-GPU-hours with tail analysis (Section 4.3).

use crate::coalesce::CoalescedError;
use dr_stats::{Mtbe, SummaryStats};
use dr_xid::Xid;

/// One row of Table 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table1Row {
    pub xid: Xid,
    pub count: u64,
    /// MTBE across all nodes (system hours); `None` if no errors.
    pub mtbe_system_h: Option<f64>,
    /// Per-node MTBE (node hours).
    pub mtbe_per_node_h: Option<f64>,
    /// Persistence summary in seconds.
    pub persistence: SummaryStats,
}

/// Compute Table 1 from coalesced errors.
///
/// `observation_hours` is the measurement window; `node_count` the GPU
/// node population (206 Ampere nodes in the study). Rows follow the
/// paper's order; XIDs with zero occurrences still get a row.
pub fn table1(
    errors: &[CoalescedError],
    observation_hours: f64,
    node_count: u32,
) -> Vec<Table1Row> {
    let mtbe = Mtbe::new(observation_hours, node_count);
    Xid::TABLE1
        .iter()
        .map(|&xid| {
            let persistences: Vec<f64> = errors
                .iter()
                .filter(|e| e.xid == xid)
                .map(|e| e.persistence().as_secs_f64())
                .collect();
            let count = persistences.len() as u64;
            Table1Row {
                xid,
                count,
                mtbe_system_h: mtbe.system_hours(count),
                mtbe_per_node_h: mtbe.per_node_hours(count),
                persistence: SummaryStats::from_samples(&persistences),
            }
        })
        .collect()
}

/// Overall MTBE across all characterized errors (the "67 node hours"
/// headline). Returns (system hours, per-node hours).
pub fn overall_mtbe(
    errors: &[CoalescedError],
    observation_hours: f64,
    node_count: u32,
) -> (Option<f64>, Option<f64>) {
    let count = errors.iter().filter(|e| e.xid.is_characterized()).count() as u64;
    let mtbe = Mtbe::new(observation_hours, node_count);
    (mtbe.system_hours(count), mtbe.per_node_hours(count))
}

/// Category-level MTBE comparison (Section 4.2 (ii)): GPU hardware +
/// interconnect vs GPU memory. Uncontained memory errors are excluded
/// from the memory side, as the paper does, because a single defective
/// GPU dominates them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CategoryMtbe {
    /// GSP + PMU SPI + NVLink + Fallen-off-the-bus + MMU errors.
    pub hardware_per_node_h: Option<f64>,
    /// DBE + RRE + RRF (uncontained excluded as outlier-dominated).
    pub memory_per_node_h: Option<f64>,
    /// memory / hardware (the ">30×" headline).
    pub ratio: Option<f64>,
}

/// The paper's hardware-vs-memory comparison uses the peripheral
/// hardware + interconnect set against the DBE/RRE/RRF memory set.
pub fn category_mtbe(
    errors: &[CoalescedError],
    observation_hours: f64,
    node_count: u32,
) -> CategoryMtbe {
    let mtbe = Mtbe::new(observation_hours, node_count);
    let hardware = [
        Xid::GspRpcTimeout,
        Xid::PmuSpiError,
        Xid::NvlinkError,
        Xid::FallenOffBus,
    ];
    let memory = [Xid::DoubleBitEcc, Xid::RowRemapEvent, Xid::RowRemapFailure];
    let hw_count = errors.iter().filter(|e| hardware.contains(&e.xid)).count() as u64;
    let mem_count = errors.iter().filter(|e| memory.contains(&e.xid)).count() as u64;
    let hardware_per_node_h = mtbe.per_node_hours(hw_count);
    let memory_per_node_h = mtbe.per_node_hours(mem_count);
    let ratio = match (memory_per_node_h, hardware_per_node_h) {
        (Some(m), Some(h)) if h > 0.0 => Some(m / h),
        _ => None,
    };
    CategoryMtbe {
        hardware_per_node_h,
        memory_per_node_h,
        ratio,
    }
}

/// Lost useful GPU computation derived from persistence durations
/// (Section 4.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LostHours {
    /// Total GPU hours lost (sum of persistences across all errors).
    pub total_h: f64,
    /// Hours contributed by errors persisting beyond the P95.
    pub beyond_p95_h: f64,
    /// beyond_p95_h / total_h (the paper's 91 %).
    pub tail_share: f64,
}

/// Sum persistence across errors; split at the per-XID P95 to measure
/// how much of the loss the tail carries.
pub fn lost_gpu_hours(errors: &[CoalescedError]) -> LostHours {
    // Per-XID p95 thresholds.
    let mut per_xid: std::collections::BTreeMap<Xid, Vec<f64>> = std::collections::BTreeMap::new();
    for e in errors {
        per_xid
            .entry(e.xid)
            .or_default()
            .push(e.persistence().as_secs_f64());
    }
    let thresholds: std::collections::BTreeMap<Xid, f64> = per_xid
        .iter()
        .map(|(&xid, samples)| (xid, SummaryStats::from_samples(samples).p95))
        .collect();

    let mut total_s = 0.0;
    let mut tail_s = 0.0;
    for e in errors {
        let p = e.persistence().as_secs_f64();
        total_s += p;
        if p > thresholds.get(&e.xid).copied().unwrap_or(f64::INFINITY) {
            tail_s += p;
        }
    }
    let total_h = total_s / 3_600.0;
    let beyond_p95_h = tail_s / 3_600.0;
    LostHours {
        total_h,
        beyond_p95_h,
        tail_share: if total_h > 0.0 {
            beyond_p95_h / total_h
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{Duration, ErrorDetail, GpuId, NodeId, Timestamp};

    fn err(xid: Xid, start_s: u64, persist_s: u64, node: u32) -> CoalescedError {
        let start = Timestamp::from_secs(start_s);
        CoalescedError {
            gpu: GpuId::at_slot(NodeId(node), 0),
            xid,
            detail: ErrorDetail::NONE,
            start,
            last: start + Duration::from_secs(persist_s),
            merged: 1,
        }
    }

    #[test]
    fn table1_counts_and_mtbe() {
        let errors: Vec<_> = (0..10).map(|i| err(Xid::MmuError, i * 100, 2, 1)).collect();
        let rows = table1(&errors, 1_000.0, 10);
        let mmu = rows.iter().find(|r| r.xid == Xid::MmuError).unwrap();
        assert_eq!(mmu.count, 10);
        assert_eq!(mmu.mtbe_system_h, Some(100.0));
        assert_eq!(mmu.mtbe_per_node_h, Some(1_000.0));
        assert_eq!(mmu.persistence.mean, 2.0);
        // Absent XIDs still get rows with zero counts.
        let dbe = rows.iter().find(|r| r.xid == Xid::DoubleBitEcc).unwrap();
        assert_eq!(dbe.count, 0);
        assert_eq!(dbe.mtbe_system_h, None);
        assert_eq!(rows.len(), 10);
    }

    #[test]
    fn overall_mtbe_excludes_software_errors() {
        let mut errors = vec![err(Xid::MmuError, 0, 1, 1), err(Xid::MmuError, 10, 1, 1)];
        errors.push(CoalescedError {
            xid: Xid::GraphicsEngineException,
            ..errors[0]
        });
        let (sys, _) = overall_mtbe(&errors, 100.0, 5);
        assert_eq!(sys, Some(50.0)); // 2 characterized errors, not 3
    }

    #[test]
    fn category_ratio_reflects_hardware_weakness() {
        // 30 hardware errors vs 1 memory error in 1000 h.
        let mut errors: Vec<_> = (0..30).map(|i| err(Xid::GspRpcTimeout, i * 10, 1, 1)).collect();
        errors.push(err(Xid::DoubleBitEcc, 500, 1, 1));
        let c = category_mtbe(&errors, 1_000.0, 10);
        assert_eq!(c.hardware_per_node_h, Some(1_000.0 / 30.0 * 10.0));
        assert_eq!(c.memory_per_node_h, Some(10_000.0));
        assert!((c.ratio.unwrap() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn category_excludes_uncontained_from_memory() {
        let mut errors = vec![err(Xid::DoubleBitEcc, 0, 1, 1)];
        for i in 0..100 {
            errors.push(err(Xid::UncontainedEcc, i * 5 + 1, 1, 1));
        }
        let c = category_mtbe(&errors, 1_000.0, 10);
        // Memory MTBE sees only the single DBE.
        assert_eq!(c.memory_per_node_h, Some(10_000.0));
    }

    #[test]
    fn lost_hours_tail_share() {
        // 99 short errors (1 s) + 1 very long one (10,000 s).
        let mut errors: Vec<_> = (0..99).map(|i| err(Xid::MmuError, i * 100, 1, 1)).collect();
        errors.push(err(Xid::MmuError, 99 * 100, 10_000, 1));
        let lost = lost_gpu_hours(&errors);
        let expected_total = (99.0 + 10_000.0) / 3_600.0;
        assert!((lost.total_h - expected_total).abs() < 1e-9);
        // The single tail error carries ~99 % of the loss.
        assert!(lost.tail_share > 0.9, "tail share {}", lost.tail_share);
    }

    #[test]
    fn lost_hours_empty() {
        let lost = lost_gpu_hours(&[]);
        assert_eq!(lost.total_h, 0.0);
        assert_eq!(lost.tail_share, 0.0);
    }
}
