//! Per-class fault arrival rates, calibrated to the paper's error counts.
//!
//! Each [`ClassSpec`] describes one *primary* fault class: its expected
//! number of primary arrivals over the reference campaign, how strongly it
//! concentrates on defective "offender" GPUs, how much of it falls into the
//! early testing phase, and how arrivals cluster into episodes.
//!
//! Primary counts are **not** the Table 1 error counts: propagation
//! multiplies them. An NVLink primary spawns a chain (self-repeat 0.66,
//! peer spread 0.14 — expected chain length 5), a GSP primary occasionally
//! drags PMU and MMU errors behind it, and a DBE always produces an
//! RRE or RRF. The campaign tests verify that the *recovered* coalesced
//! counts land on Table 1.

use dr_xid::Xid;

/// The primary fault classes the campaign schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultClass {
    /// Application-induced MMU faults (the bulk of XID 31).
    MmuApp,
    /// Double-bit DRAM errors (XID 48 → 63/64 chain).
    Dbe,
    /// Two corrected SBEs at one address → proactive remap (XID 63/64
    /// without a DBE line).
    SbePair,
    /// NVLink CRC error chains (XID 74).
    Nvlink,
    /// GPU falls off the bus (XID 79).
    BusDrop,
    /// Standalone contained uncorrectable errors in SRAM structures
    /// (XID 94 without a preceding remap flow).
    SramContained,
    /// Uncontained memory error storms (XID 95).
    UncontainedStorm,
    /// GSP RPC timeouts (XID 119, occasionally cascading to 122/31).
    GspHang,
    /// PMU SPI communication failures (XID 122 → 31 with p = 0.82).
    PmuSpi,
    /// Job-induced software errors (XID 13/43) — logged but excluded from
    /// the characterization; kept for extraction realism.
    SoftwareNoise,
    /// The undocumented H100 event (XID 136).
    Event136,
}

impl FaultClass {
    /// The XID this class's *first* log line carries.
    pub const fn primary_xid(self) -> Xid {
        match self {
            FaultClass::MmuApp => Xid::MmuError,
            FaultClass::Dbe => Xid::DoubleBitEcc,
            FaultClass::SbePair => Xid::RowRemapEvent,
            FaultClass::Nvlink => Xid::NvlinkError,
            FaultClass::BusDrop => Xid::FallenOffBus,
            FaultClass::SramContained => Xid::ContainedEcc,
            FaultClass::UncontainedStorm => Xid::UncontainedEcc,
            FaultClass::GspHang => Xid::GspRpcTimeout,
            FaultClass::PmuSpi => Xid::PmuSpiError,
            FaultClass::SoftwareNoise => Xid::GraphicsEngineException,
            FaultClass::Event136 => Xid::Xid136,
        }
    }
}

/// One primary class's calibration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClassSpec {
    pub class: FaultClass,
    /// Expected primary arrivals over the reference campaign duration.
    pub expected_count: f64,
    /// Fraction of arrivals falling inside the early testing window.
    pub testing_fraction: f64,
    /// Number of designated offender GPUs (0 = uniform).
    pub offenders: u8,
    /// Probability an arrival targets an offender.
    pub offender_share: f64,
    /// Zipf exponent over the offender ranks (higher = first dominates).
    pub offender_skew: f64,
    /// Mean arrivals per clustered episode (1.0 = no clustering).
    pub cluster_mean: f64,
    /// Mean spacing between clustered arrivals (hours).
    pub cluster_spread_h: f64,
}

impl ClassSpec {
    /// Uniform, unclustered class.
    pub const fn uniform(class: FaultClass, expected_count: f64) -> Self {
        ClassSpec {
            class,
            expected_count,
            testing_fraction: 0.0,
            offenders: 0,
            offender_share: 0.0,
            offender_skew: 0.0,
            cluster_mean: 1.0,
            cluster_spread_h: 3.0,
        }
    }
}

/// The campaign's rate table.
#[derive(Clone, Debug, PartialEq)]
pub struct ClassRates {
    pub specs: Vec<ClassSpec>,
    /// Length of the early testing window (days from campaign start).
    pub testing_days: f64,
    /// Duration the `expected_count`s refer to (days). Campaigns of other
    /// lengths scale rates proportionally.
    pub reference_days: f64,
}

impl ClassRates {
    /// The Ampere-fleet calibration (Table 1 over 855 days, 206 nodes).
    ///
    /// Primary-count derivation from Table 1 coalesced totals:
    /// * MMU 18,876 ≈ primaries + PMU cascades (0.82·128) + GSP cascades;
    /// * NVLink 2,987 ≈ primaries × expected chain length 1/(1−0.66−0.14);
    /// * RRE 95 ≈ 0.5·DBE + successful SBE-pair remaps;
    /// * RRF 35 ≈ 0.5·DBE + SBE-pair remaps hitting exhausted banks;
    /// * contained 94 = RRF·0.43 + standalone SRAM containments;
    /// * PMU 122 primaries ≈ (128 − 0.01·2,136 GSP cascades) / 1.18 self-repeat.
    pub fn ampere_delta() -> Self {
        ClassRates {
            specs: vec![
                ClassSpec {
                    cluster_mean: 1.5,
                    cluster_spread_h: 2.0,
                    ..ClassSpec::uniform(FaultClass::MmuApp, 18_770.0)
                },
                ClassSpec {
                    class: FaultClass::Dbe,
                    expected_count: 32.0,
                    testing_fraction: 0.85,
                    offenders: 6,
                    offender_share: 0.90,
                    offender_skew: 0.0,
                    cluster_mean: 1.0,
                    cluster_spread_h: 3.0,
                },
                ClassSpec {
                    class: FaultClass::SbePair,
                    expected_count: 98.0,
                    testing_fraction: 0.85,
                    offenders: 4,
                    offender_share: 0.20,
                    offender_skew: 1.0,
                    cluster_mean: 1.0,
                    cluster_spread_h: 3.0,
                },
                // A flaky connector throws chains in episodes: one bad node
                // produces many chains over a few hours while it awaits a
                // reset — this is why only ~35 jobs ever encountered an
                // NVLink error although ~3,000 were logged.
                ClassSpec {
                    class: FaultClass::Nvlink,
                    expected_count: 600.0,
                    testing_fraction: 0.0,
                    offenders: 24,
                    offender_share: 0.85,
                    offender_skew: 0.8,
                    cluster_mean: 8.0,
                    cluster_spread_h: 0.5,
                },
                ClassSpec::uniform(FaultClass::BusDrop, 31.0),
                ClassSpec::uniform(FaultClass::SramContained, 13.0),
                ClassSpec {
                    class: FaultClass::UncontainedStorm,
                    expected_count: 38_905.0,
                    testing_fraction: 0.90,
                    offenders: 4,
                    offender_share: 0.999,
                    offender_skew: 4.5,
                    cluster_mean: 1.0,
                    cluster_spread_h: 3.0,
                },
                // GSP timeouts burst while a demanding workload keeps
                // hammering a GPU (SREs correlated them with ML benchmarks):
                // few distinct jobs, many errors.
                ClassSpec {
                    cluster_mean: 25.0,
                    cluster_spread_h: 0.4,
                    ..ClassSpec::uniform(FaultClass::GspHang, 2_136.0)
                },
                ClassSpec::uniform(FaultClass::PmuSpi, 88.0),
                ClassSpec {
                    cluster_mean: 2.0,
                    ..ClassSpec::uniform(FaultClass::SoftwareNoise, 4_000.0)
                },
            ],
            testing_days: 90.0,
            reference_days: 855.0,
        }
    }

    /// The H100 extension fleet (Section 6): 80 GH200 nodes over roughly
    /// eight months, with counts 18 MMU / 10 DBE / 5 RRF / 9 contained /
    /// 70 XID 136 and no row-remap events — the DBE population sits on
    /// spare-exhausted parts.
    pub fn h100_delta() -> Self {
        ClassRates {
            specs: vec![
                ClassSpec::uniform(FaultClass::MmuApp, 18.0),
                ClassSpec {
                    class: FaultClass::Dbe,
                    expected_count: 10.0,
                    testing_fraction: 0.6,
                    offenders: 3,
                    offender_share: 0.95,
                    offender_skew: 1.0,
                    cluster_mean: 1.0,
                    cluster_spread_h: 3.0,
                },
                ClassSpec::uniform(FaultClass::SramContained, 9.0),
                ClassSpec {
                    cluster_mean: 3.0,
                    ..ClassSpec::uniform(FaultClass::Event136, 70.0)
                },
            ],
            testing_days: 60.0,
            reference_days: 240.0,
        }
    }

    /// Scale every expected count by `factor`, chainably (stress tests,
    /// down-scaled presets, the DSL's `rates.* *= F`).
    pub fn scale_all(mut self, factor: f64) -> Self {
        for s in &mut self.specs {
            s.expected_count *= factor;
        }
        self
    }

    /// Multiply one class's expected count by `factor` (the DSL's
    /// `rates.xid79 *= F` overrides). Returns `false` when `class` has no
    /// spec in this table — callers surface that as a configuration
    /// error instead of silently dropping the override.
    pub fn scale_class(&mut self, class: FaultClass, factor: f64) -> bool {
        let mut found = false;
        for s in &mut self.specs {
            if s.class == class {
                s.expected_count *= factor;
                found = true;
            }
        }
        found
    }

    /// Whether `class` has a spec in this table.
    pub fn has_class(&self, class: FaultClass) -> bool {
        self.specs.iter().any(|s| s.class == class)
    }

    /// The testing-window boundary for a campaign of `duration_days`.
    ///
    /// The window scales proportionally with campaign length so that
    /// shortened campaigns (tests, benches) keep both phases and the
    /// total expected count scales linearly.
    pub fn testing_boundary_days(&self, duration_days: f64) -> f64 {
        self.testing_days * duration_days / self.reference_days
    }

    /// Arrival rate of `spec` per hour inside/outside the testing window
    /// for a campaign of `duration_days`.
    pub fn phase_rates(&self, spec: &ClassSpec, duration_days: f64) -> (f64, f64) {
        let scale = duration_days / self.reference_days;
        let total = spec.expected_count * scale;
        let test_days = self.testing_boundary_days(duration_days);
        let late_days = (duration_days - test_days).max(0.0);
        let early = if test_days > 0.0 {
            total * spec.testing_fraction / (test_days * 24.0)
        } else {
            0.0
        };
        let late = if late_days > 0.0 {
            total * (1.0 - spec.testing_fraction) / (late_days * 24.0)
        } else {
            0.0
        };
        (early, late)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ampere_rates_cover_all_primary_classes() {
        let r = ClassRates::ampere_delta();
        for class in [
            FaultClass::MmuApp,
            FaultClass::Dbe,
            FaultClass::SbePair,
            FaultClass::Nvlink,
            FaultClass::BusDrop,
            FaultClass::SramContained,
            FaultClass::UncontainedStorm,
            FaultClass::GspHang,
            FaultClass::PmuSpi,
        ] {
            assert!(
                r.specs.iter().any(|s| s.class == class),
                "missing {class:?}"
            );
        }
    }

    #[test]
    fn phase_rates_integrate_to_expected_count() {
        let r = ClassRates::ampere_delta();
        for &days in &[855.0f64, 85.5, 30.0] {
            let boundary = r.testing_boundary_days(days);
            for spec in &r.specs {
                let (early, late) = r.phase_rates(spec, days);
                let integrated = early * boundary * 24.0 + late * (days - boundary) * 24.0;
                let expected = spec.expected_count * days / r.reference_days;
                assert!(
                    (integrated - expected).abs() / expected < 1e-9,
                    "{:?} at {days} days: {integrated} vs {expected}",
                    spec.class
                );
            }
        }
    }

    #[test]
    fn short_campaign_scales_counts() {
        // A 10%-length campaign expects 10% of every class's events.
        let r = ClassRates::ampere_delta();
        let spec = r.specs.iter().find(|s| s.class == FaultClass::GspHang).unwrap();
        let d: f64 = 85.5;
        let boundary = r.testing_boundary_days(d);
        let (early, late) = r.phase_rates(spec, d);
        let integrated = early * boundary * 24.0 + late * (d - boundary) * 24.0;
        let expected = spec.expected_count * 0.1;
        assert!(
            (integrated - expected).abs() / expected < 1e-9,
            "integrated {integrated}, expected {expected}"
        );
    }

    #[test]
    fn fully_tested_window_campaign() {
        // Even a campaign shorter than the reference testing window keeps
        // both phases (the window scales proportionally).
        let r = ClassRates::ampere_delta();
        let spec = r.specs.iter().find(|s| s.class == FaultClass::Dbe).unwrap();
        let (early, late) = r.phase_rates(spec, 30.0);
        assert!(early > 0.0);
        assert!(late > 0.0);
        assert!(r.testing_boundary_days(30.0) < 30.0);
    }

    #[test]
    fn h100_rates_reflect_section6() {
        let r = ClassRates::h100_delta();
        assert!(r.specs.iter().any(|s| s.class == FaultClass::Event136));
        // No NVLink / GSP classes reported for the H100 early data.
        assert!(!r.specs.iter().any(|s| s.class == FaultClass::GspHang));
        let total: f64 = r.specs.iter().map(|s| s.expected_count).sum();
        assert!((total - 107.0).abs() < 1.0); // 18+10+9+70
    }

    #[test]
    fn scaling_multiplies_counts() {
        let r = ClassRates::ampere_delta().scale_all(0.25);
        let gsp = r.specs.iter().find(|s| s.class == FaultClass::GspHang).unwrap();
        assert!((gsp.expected_count - 534.0).abs() < 1e-9);
    }

    #[test]
    fn per_class_scaling_touches_only_its_class() {
        let base = ClassRates::ampere_delta();
        let mut r = base.clone();
        assert!(r.scale_class(FaultClass::BusDrop, 2.0));
        for (s, b) in r.specs.iter().zip(base.specs.iter()) {
            let want = if s.class == FaultClass::BusDrop {
                b.expected_count * 2.0
            } else {
                b.expected_count
            };
            assert!((s.expected_count - want).abs() < 1e-12, "{:?}", s.class);
        }
        // Absent classes report false and leave the table untouched.
        let before = r.clone();
        assert!(!r.scale_class(FaultClass::Event136, 3.0));
        assert_eq!(r, before);
        assert!(!r.has_class(FaultClass::Event136));
        assert!(r.has_class(FaultClass::GspHang));
    }

    #[test]
    fn primary_xids_match_classes() {
        assert_eq!(FaultClass::GspHang.primary_xid(), Xid::GspRpcTimeout);
        assert_eq!(FaultClass::UncontainedStorm.primary_xid(), Xid::UncontainedEcc);
        assert_eq!(FaultClass::SbePair.primary_xid(), Xid::RowRemapEvent);
    }
}
