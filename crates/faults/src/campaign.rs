//! The injection campaign: drives an 855-day (configurable) fault history
//! over a [`Fleet`] and produces everything the analysis pipeline and the
//! scheduler simulation consume.
//!
//! Outputs, in increasing level of abstraction:
//!
//! 1. **Raw records** — every duplicated log occurrence, exactly what the
//!    driver would have written (one [`dr_xid::ErrorRecord`] per line).
//!    Bursts repeat the same message with sub-`Δt` gaps so the pipeline's
//!    coalescing stage has real work to do.
//! 2. **Raw text** — for a configurable subset of nodes, full syslog text
//!    (NVRM lines interleaved with system noise) exercising Stage I
//!    extraction end to end.
//! 3. **Ground-truth events** — one [`ErrorEvent`] per coalesced-level
//!    episode with its consequence and propagation chain id, used to
//!    validate what the pipeline recovers and to drive the job simulation.
//! 4. **Downtime intervals** — GPU repair windows for the availability
//!    analysis (Figure 9c, Section 5.4).

use crate::offenders::OffenderMix;
use crate::persistence::PersistenceModel;
use crate::rates::{ClassRates, ClassSpec, FaultClass};
use dr_cluster::{DeltaShape, Fleet};
use dr_des::{hours_f64, secs_f64, Engine, RngStreams, SimTime, US_PER_DAY};
use dr_gpu::device::Consequence;
use dr_gpu::{Emission, Fault, Gpu, GpuArch, RasTuning};
use dr_stats::dist::{coin, Sampler};
use dr_stats::{Exp, LogNormal};
use dr_xid::{Duration, ErrorDetail, ErrorRecord, GpuId, NodeId, Timestamp, Xid};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Syslog-text emission settings: which nodes render full text and how
/// noisy it is. Grouped so the scenario compiler (dr-scenario) can fill
/// it from a `text { … }` block and defaults stay in one place.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TextConfig {
    /// How many nodes (lowest ids first) also produce full syslog text.
    pub nodes: usize,
    /// When true, `CampaignOutput::text_logs` stays empty and callers
    /// stream the corpus via [`CampaignOutput::text_streams`] instead of
    /// holding the whole rendering in memory.
    pub defer: bool,
    /// Unrelated syslog noise per text node per hour.
    pub noise_per_node_hour: f64,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            nodes: 0,
            defer: false,
            noise_per_node_hour: 1.0,
        }
    }
}

/// Operator-repair model: storm-repair probability and the drain+reboot
/// duration distribution. Grouped for the scenario compiler's
/// `repair { … }` block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepairConfig {
    /// Probability that an uncontained-storm error state triggers an
    /// operator repair (the rest clear silently when the storm ends —
    /// the paper's "lack of monitoring" observation).
    pub p_storm: f64,
    /// Repair (drain + reboot) duration distribution — median/p95 hours.
    pub median_h: f64,
    pub p95_h: f64,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            p_storm: 0.80,
            median_h: 0.2,
            p95_h: 1.0,
        }
    }
}

/// Campaign configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignConfig {
    pub shape: DeltaShape,
    pub duration_days: f64,
    pub seed: u64,
    pub tuning: RasTuning,
    pub rates: ClassRates,
    /// Gap between duplicated lines inside a burst (seconds). Must stay
    /// below the pipeline's coalescing Δt or bursts split.
    pub burst_gap_s: f64,
    /// Syslog text emission.
    pub text: TextConfig,
    /// Operator repair model.
    pub repair: RepairConfig,
}

impl CampaignConfig {
    /// The flagship configuration: the Ampere Table 1 study.
    ///
    /// Canonical definition: `scenarios/ampere_study.scn`, compiled by
    /// dr-scenario. This constructor must stay bit-identical to the
    /// compiled scenario — a tier-1 equivalence test in dr-scenario
    /// pins the two together.
    pub fn ampere_study(seed: u64) -> Self {
        CampaignConfig {
            shape: DeltaShape::delta_ampere(),
            duration_days: 855.0,
            seed,
            tuning: RasTuning::default(),
            rates: ClassRates::ampere_delta(),
            burst_gap_s: 4.5,
            text: TextConfig::default(),
            repair: RepairConfig::default(),
        }
    }

    /// The Section 6 H100 early-deployment campaign (canonical form:
    /// `scenarios/h100_study.scn`).
    pub fn h100_study(seed: u64) -> Self {
        CampaignConfig {
            shape: DeltaShape::delta_h100(),
            duration_days: 240.0,
            rates: ClassRates::h100_delta(),
            ..CampaignConfig::ampere_study(seed)
        }
    }

    /// A small, fast configuration for tests and the quickstart example:
    /// tiny fleet, 30 days, rates scaled down to the fleet size
    /// (canonical form: `scenarios/tiny.scn`).
    pub fn tiny(seed: u64) -> Self {
        CampaignConfig {
            shape: DeltaShape::tiny(),
            duration_days: 30.0,
            rates: ClassRates::ampere_delta().scale_all(0.3),
            text: TextConfig {
                nodes: 6,
                ..TextConfig::default()
            },
            ..CampaignConfig::ampere_study(seed)
        }
    }
}

/// Ground truth for one coalesced-level error episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ErrorEvent {
    pub at: Timestamp,
    pub gpu: GpuId,
    pub xid: Xid,
    pub detail: ErrorDetail,
    /// How long the episode keeps re-logging.
    pub persistence: Duration,
    /// What the episode did beyond being logged.
    pub consequence: Consequence,
    /// Propagation chain this episode belongs to (primary + follow-ups).
    pub chain: u64,
    /// For MMU events: whether hardware (vs application) induced.
    pub hw_induced: bool,
}

/// One GPU repair window (drain + reboot).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DowntimeInterval {
    pub gpu: GpuId,
    pub start: Timestamp,
    pub end: Timestamp,
    pub cause: Xid,
}

impl DowntimeInterval {
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// Everything a campaign produces.
pub struct CampaignOutput {
    /// Every raw log occurrence, time-sorted.
    pub records: Vec<ErrorRecord>,
    /// Ground-truth episodes, time-sorted.
    pub events: Vec<ErrorEvent>,
    /// Repair windows.
    pub downtime: Vec<DowntimeInterval>,
    /// Full syslog text for the configured node subset, per node, in
    /// order. Empty when the config set `defer_text` — stream via
    /// [`CampaignOutput::text_streams`] instead.
    pub text_logs: Vec<(NodeId, Vec<String>)>,
    /// The recipe that (re)generates the text corpus deterministically.
    pub text: crate::textgen::TextSpec,
    /// The fleet in its end-of-campaign state.
    pub fleet: Fleet,
    /// Campaign duration.
    pub duration: Duration,
    /// GPUs designated as defective offenders, per class.
    pub offenders: BTreeMap<FaultClass, Vec<GpuId>>,
}

impl CampaignOutput {
    /// Observation window in hours.
    pub fn observation_hours(&self) -> f64 {
        self.duration.as_hours_f64()
    }

    /// Ground-truth episode count for one XID.
    pub fn event_count(&self, xid: Xid) -> usize {
        self.events.iter().filter(|e| e.xid == xid).count()
    }

    /// Lazy per-node syslog line streams for the text-node subset.
    /// Draining them yields exactly `render_text_logs(&self.records,
    /// &self.text)` — the streaming emission mode of the campaign.
    pub fn text_streams(&self) -> Vec<(NodeId, crate::textgen::NodeTextStream<'_>)> {
        crate::textgen::node_streams(&self.records, &self.text)
    }
}

/// Engine event payloads.
enum Ev {
    /// Next primary arrival of class `class_idx`.
    Arrival { class_idx: usize },
    /// A clustered repeat of a primary on the same victim.
    ClusterRepeat { class_idx: usize, gpu: GpuId, left: u32 },
    /// Propagated fault (NVLink chains).
    Followup {
        gpu: GpuId,
        fault: Fault,
        chain: u64,
        depth: u32,
    },
    /// Operator repair completes for `gpu`.
    Repair { gpu: GpuId, start: SimTime, cause: Xid },
    /// A storm that nobody repaired clears on its own.
    SilentClear { gpu: GpuId },
}

/// The campaign driver.
pub struct Campaign {
    cfg: CampaignConfig,
    fleet: Fleet,
    mixes: Vec<OffenderMix>,
    persistence: BTreeMap<Xid, PersistenceModel>,
    rng: StdRng,
    records: Vec<ErrorRecord>,
    events: Vec<ErrorEvent>,
    downtime: Vec<DowntimeInterval>,
    repair_pending: BTreeSet<GpuId>,
    repair_dist: LogNormal,
    next_chain: u64,
    offenders: BTreeMap<FaultClass, Vec<GpuId>>,
    horizon: SimTime,
}

impl Campaign {
    /// Run a campaign to completion.
    pub fn run(cfg: CampaignConfig) -> CampaignOutput {
        Self::run_observed(cfg, &dr_obs::MetricsSink::disabled())
    }

    /// [`Campaign::run`] with observability: build/engine/finish phase
    /// spans plus event/record/line counters recorded into `sink`. The
    /// sink is write-only — it never feeds the RNG or the engine, so the
    /// output is bit-identical to `run` for the same config and seed.
    pub fn run_observed(cfg: CampaignConfig, sink: &dr_obs::MetricsSink) -> CampaignOutput {
        use dr_obs::{Counter, Stage};
        let span = sink.span(Stage::Campaign, "total");

        let mut this = {
            let _child = span.child("build");
            let streams = RngStreams::new(cfg.seed);
            let mut fleet = Fleet::build(cfg.shape, cfg.tuning);
            let rng = streams.named("campaign-main");

            let offenders =
                designate_offenders(&cfg, &mut fleet, &mut streams.named("offenders"));
            let mixes = build_mixes(&cfg, &fleet, &offenders);
            let persistence = persistence_models();

            let horizon = (cfg.duration_days * US_PER_DAY as f64) as SimTime;
            Campaign {
                repair_dist: LogNormal::from_median_p95(cfg.repair.median_h, cfg.repair.p95_h),
                cfg,
                fleet,
                mixes,
                persistence,
                rng,
                records: Vec::new(),
                events: Vec::new(),
                downtime: Vec::new(),
                repair_pending: BTreeSet::new(),
                next_chain: 0,
                offenders,
                horizon,
            }
        };

        {
            let _child = span.child("engine");
            let mut engine: Engine<Ev> = Engine::new();
            // Seed the first arrival of every class.
            for class_idx in 0..this.cfg.rates.specs.len() {
                if let Some(t) = this.next_arrival_time(0, class_idx) {
                    engine.schedule(t, Ev::Arrival { class_idx });
                }
            }

            // The engine borrows `this` through the closure.
            let horizon = this.horizon;
            let this_ref = &mut this;
            engine_run(engine, this_ref, horizon);
        }

        let out = {
            let _child = span.child("finish");
            this.finish()
        };
        sink.add(Stage::Campaign, Counter::Events, out.events.len() as u64);
        sink.add(Stage::Campaign, Counter::Records, out.records.len() as u64);
        let lines: u64 = out.text_logs.iter().map(|(_, l)| l.len() as u64).sum();
        sink.add(Stage::Campaign, Counter::Lines, lines);
        out
    }

    /// Draw the next arrival time for `class_idx` strictly after `now`,
    /// honoring the two-phase (testing / steady-state) rate profile.
    fn next_arrival_time(&mut self, now: SimTime, class_idx: usize) -> Option<SimTime> {
        let spec = self.cfg.rates.specs[class_idx];
        let (early, late) = self.cfg.rates.phase_rates(&spec, self.cfg.duration_days);
        // Clustered classes schedule cluster heads at a reduced rate.
        let cluster = spec.cluster_mean.max(1.0);
        let (early, late) = (early / cluster, late / cluster);
        let boundary = (self.cfg.rates.testing_boundary_days(self.cfg.duration_days)
            * US_PER_DAY as f64) as SimTime;

        let mut t = now;
        loop {
            let rate = if t < boundary { early } else { late };
            if rate <= 0.0 {
                if t < boundary && late > 0.0 {
                    t = boundary;
                    continue;
                }
                return None;
            }
            let gap = hours_f64(Exp::new(rate).sample(&mut self.rng));
            let cand = t + gap.max(1);
            if t < boundary && cand > boundary && late != early {
                // Crossed into the steady-state phase: restart there
                // (memorylessness makes this exact).
                t = boundary;
                continue;
            }
            return (cand <= self.horizon).then_some(cand);
        }
    }

    /// Sample how many arrivals a clustered primary gets: the configured
    /// mean with ±50 % uniform jitter (low variance keeps campaign totals
    /// near their calibration even for heavy clustering like GSP's).
    fn cluster_size(&mut self, spec: &ClassSpec) -> u32 {
        let mean = spec.cluster_mean.max(1.0);
        if mean <= 1.0 {
            return 1;
        }
        let jitter = 0.5 + self.rng.gen::<f64>();
        ((mean * jitter).round() as u32).max(1)
    }

    fn class_fault(&mut self, class: FaultClass, gpu: GpuId) -> Fault {
        let arch = self
            .fleet
            .gpu(gpu)
            .map(|g| g.arch())
            .unwrap_or(GpuArch::A100);
        let caps = arch.caps();
        match class {
            FaultClass::MmuApp => Fault::MmuFault { app_induced: true },
            FaultClass::Dbe => Fault::MemoryDbe {
                bank: self.rng.gen_range(0..caps.banks),
                row: self.rng.gen_range(0..1 << 18),
            },
            FaultClass::SbePair => Fault::MemorySbe {
                bank: self.rng.gen_range(0..caps.banks),
                row: self.rng.gen_range(0..1 << 18),
            },
            FaultClass::Nvlink => Fault::NvlinkCrc {
                link: self.rng.gen_range(0..caps.nvlink_links.max(1)),
            },
            FaultClass::BusDrop => Fault::BusDrop,
            FaultClass::SramContained => Fault::MemoryDbe {
                // Handled specially in `fire`: direct contained emission.
                bank: 0,
                row: 0,
            },
            FaultClass::UncontainedStorm => Fault::UncontainedEcc {
                // Wide detail space: overlapping storms on the offender GPU
                // must not alias into one coalesced error.
                partition: self.rng.gen_range(0..64),
                slice: self.rng.gen_range(0..1 << 16),
            },
            FaultClass::GspHang => Fault::GspHang {
                function: [76, 103, 34][self.rng.gen_range(0..3)],
            },
            FaultClass::PmuSpi => Fault::PmuSpi {
                addr: self.rng.gen_range(0x40..0x200),
            },
            FaultClass::SoftwareNoise | FaultClass::Event136 => {
                // Synthesized directly in `fire` (no device state machine).
                Fault::MmuFault { app_induced: true }
            }
        }
    }

    /// Fire one arrival of `class` on `gpu` at engine time `now`.
    fn fire(&mut self, sched: &mut dr_des::Scheduler<'_, Ev>, class: FaultClass, gpu: GpuId) {
        let now = sched.now();
        let chain = self.next_chain;
        self.next_chain += 1;

        match class {
            FaultClass::SoftwareNoise => {
                let xid = if coin(&mut self.rng, 0.7) {
                    Xid::GraphicsEngineException
                } else {
                    Xid::ResetChannelVerifError
                };
                let detail = ErrorDetail::new(
                    self.rng.gen_range(0..32),
                    self.rng.gen_range(0x1000..0x90000),
                );
                self.emit_episode(now, gpu, xid, detail, chain, Consequence::Masked, false);
            }
            FaultClass::Event136 => {
                let detail = ErrorDetail::new(self.rng.gen_range(0..8), 0);
                self.emit_episode(now, gpu, Xid::Xid136, detail, chain, Consequence::Masked, false);
            }
            FaultClass::SbePair => {
                // Two corrected SBEs at one address, 1 ms apart: only the
                // second (which triggers the proactive remap) emits.
                let fault = self.class_fault(class, gpu);
                self.inject(sched, gpu, fault, chain);
                self.inject(sched, gpu, fault, chain);
            }
            FaultClass::SramContained => {
                let detail = ErrorDetail::new(self.rng.gen_range(0..16), 0);
                self.emit_episode(
                    now,
                    gpu,
                    Xid::ContainedEcc,
                    detail,
                    chain,
                    Consequence::KilledAffectedProcesses,
                    false,
                );
            }
            _ => {
                let fault = self.class_fault(class, gpu);
                self.inject(sched, gpu, fault, chain);
            }
        }
    }

    /// Push `fault` into the device, emit episodes for every resulting
    /// XID, and schedule the consequences.
    fn inject(
        &mut self,
        sched: &mut dr_des::Scheduler<'_, Ev>,
        gpu: GpuId,
        fault: Fault,
        chain: u64,
    ) {
        let now = sched.now();
        let Some(device) = self.fleet.gpu_mut(gpu) else {
            return;
        };
        let result = device.inject(fault, &mut self.rng);
        let hw_mmu = !matches!(fault, Fault::MmuFault { app_induced: true });

        let mut first = true;
        let mut storm_end = Duration::ZERO;
        for Emission { delay, xid, detail } in result.emissions.clone() {
            let at = now + secs_f64(delay.as_secs_f64());
            let at_ts = Timestamp::from_micros(at);
            let consequence = if first {
                result.consequence
            } else {
                Consequence::Masked
            };
            let hw = xid == Xid::MmuError && hw_mmu;
            let d = self.emit_episode_at(at_ts, gpu, xid, detail, chain, consequence, hw);
            if first {
                storm_end = d;
            }
            first = false;
        }

        // Consequence scheduling.
        match result.consequence {
            Consequence::GpuErrorState | Consequence::GpuLost => {
                let is_storm = matches!(fault, Fault::UncontainedEcc { .. });
                let repair_now = !is_storm || coin(&mut self.rng, self.cfg.repair.p_storm);
                if repair_now {
                    self.schedule_repair(sched, gpu, fault_xid(fault));
                } else {
                    // Unmonitored storm: clears silently when it ends.
                    sched.schedule_in(secs_f64(storm_end.as_secs_f64()) + 1, Ev::SilentClear { gpu });
                }
            }
            Consequence::SpreadToPeers => {
                // Inter-GPU NVLink propagation: a peer sees its own error a
                // few seconds later and the chain continues there (Figure 6
                // branch weights are exclusive: self 0.66 / spread 0.14 /
                // terminal error state 0.20, expected chain length 5).
                let peers = self.fleet.nvlink_peers(gpu);
                if !peers.is_empty() {
                    let peer = peers[self.rng.gen_range(0..peers.len())];
                    let delay = secs_f64(1.0 + Exp::new(0.5).sample(&mut self.rng));
                    self.schedule_followup(sched, delay, peer, chain, 0);
                }
            }
            Consequence::Masked if matches!(fault, Fault::NvlinkCrc { .. }) => {
                // Figure 6 self-loop: the replayed error repeats shortly.
                let delay = secs_f64(6.0 + Exp::new(0.1).sample(&mut self.rng));
                self.schedule_followup(sched, delay, gpu, chain, 0);
            }
            Consequence::Masked if matches!(fault, Fault::PmuSpi { .. }) => {
                // Figure 5's PMU->PMU self-edge (0.18): the SPI failure
                // recurs as a fresh error that rolls the MMU branch anew.
                let delay = secs_f64(6.0 + Exp::new(0.12).sample(&mut self.rng));
                let addr = self.rng.gen_range(0x40..0x200);
                sched.schedule_in(
                    delay,
                    Ev::Followup {
                        gpu,
                        fault: Fault::PmuSpi { addr },
                        chain,
                        depth: 1,
                    },
                );
            }
            _ => {}
        }
    }

    fn schedule_followup(
        &mut self,
        sched: &mut dr_des::Scheduler<'_, Ev>,
        delay: SimTime,
        gpu: GpuId,
        chain: u64,
        depth: u32,
    ) {
        if depth >= 64 {
            return;
        }
        let caps = self
            .fleet
            .gpu(gpu)
            .map(|g| g.arch().caps())
            .unwrap_or(GpuArch::A100.caps());
        let fault = Fault::NvlinkCrc {
            link: self.rng.gen_range(0..caps.nvlink_links.max(1)),
        };
        sched.schedule_in(
            delay,
            Ev::Followup {
                gpu,
                fault,
                chain,
                depth: depth + 1,
            },
        );
    }

    fn schedule_repair(&mut self, sched: &mut dr_des::Scheduler<'_, Ev>, gpu: GpuId, cause: Xid) {
        if !self.repair_pending.insert(gpu) {
            return; // repair already underway
        }
        let hours = self.repair_dist.sample(&mut self.rng).min(48.0);
        sched.schedule_in(
            hours_f64(hours),
            Ev::Repair {
                gpu,
                start: sched.now(),
                cause,
            },
        );
    }

    /// Emit one coalesced-level episode starting now.
    fn emit_episode(
        &mut self,
        now: SimTime,
        gpu: GpuId,
        xid: Xid,
        detail: ErrorDetail,
        chain: u64,
        consequence: Consequence,
        hw_induced: bool,
    ) -> Duration {
        self.emit_episode_at(
            Timestamp::from_micros(now),
            gpu,
            xid,
            detail,
            chain,
            consequence,
            hw_induced,
        )
    }

    /// Emit one episode at an explicit wall-clock start. Returns the
    /// sampled persistence.
    fn emit_episode_at(
        &mut self,
        at: Timestamp,
        gpu: GpuId,
        xid: Xid,
        detail: ErrorDetail,
        chain: u64,
        consequence: Consequence,
        hw_induced: bool,
    ) -> Duration {
        let persistence = match self.persistence.get(&xid) {
            Some(m) => m.sample(&mut self.rng),
            None => Duration::ZERO,
        };
        self.events.push(ErrorEvent {
            at,
            gpu,
            xid,
            detail,
            persistence,
            consequence,
            chain,
            hw_induced,
        });

        // Burst of duplicated records: first at `at`, last at
        // `at + persistence`, intermediate lines under the coalescing gap.
        // Severe (long) episodes re-log faster — the signature the
        // preventive-action predictor (dr-predict) keys on.
        let gap = if persistence.as_secs_f64() > 600.0 {
            self.cfg.burst_gap_s * 0.6
        } else {
            self.cfg.burst_gap_s
        };
        let total_s = persistence.as_secs_f64();
        self.records.push(ErrorRecord::new(at, gpu, xid, detail));
        if total_s > 0.01 {
            let mut t = 0.0;
            loop {
                let step = gap * (0.6 + 0.4 * self.rng.gen::<f64>());
                t += step;
                if t >= total_s {
                    break;
                }
                self.records.push(ErrorRecord::new(
                    at + Duration::from_secs_f64(t),
                    gpu,
                    xid,
                    detail,
                ));
            }
            self.records
                .push(ErrorRecord::new(at + persistence, gpu, xid, detail));
        }
        persistence
    }

    fn handle(&mut self, sched: &mut dr_des::Scheduler<'_, Ev>, ev: Ev) {
        match ev {
            Ev::Arrival { class_idx } => {
                let spec = self.cfg.rates.specs[class_idx];
                let gpu = self.mixes[class_idx].pick(&mut self.rng);
                self.fire(sched, spec.class, gpu);
                // Cluster repeats on the same victim.
                let repeats = self.cluster_size(&spec) - 1;
                if repeats > 0 {
                    let delay =
                        hours_f64(Exp::new(1.0 / spec.cluster_spread_h).sample(&mut self.rng));
                    sched.schedule_in(
                        delay.max(secs_f64(60.0)),
                        Ev::ClusterRepeat {
                            class_idx,
                            gpu,
                            left: repeats,
                        },
                    );
                }
                if let Some(t) = self.next_arrival_time(sched.now(), class_idx) {
                    sched.schedule_at(t, Ev::Arrival { class_idx });
                }
            }
            Ev::ClusterRepeat { class_idx, gpu, left } => {
                let spec = self.cfg.rates.specs[class_idx];
                self.fire(sched, spec.class, gpu);
                if left > 1 {
                    let delay =
                        hours_f64(Exp::new(1.0 / spec.cluster_spread_h).sample(&mut self.rng));
                    sched.schedule_in(
                        delay.max(secs_f64(60.0)),
                        Ev::ClusterRepeat {
                            class_idx,
                            gpu,
                            left: left - 1,
                        },
                    );
                }
            }
            Ev::Followup {
                gpu,
                fault,
                chain,
                depth,
            } => {
                // Depth is tracked by re-wrapping the consequence logic:
                // inject() schedules further follow-ups at depth 0, so we
                // bound chains here by dropping too-deep events.
                if depth < 64 {
                    self.inject(sched, gpu, fault, chain);
                }
            }
            Ev::Repair { gpu, start, cause } => {
                self.repair_pending.remove(&gpu);
                if let Some(device) = self.fleet.gpu_mut(gpu) {
                    device.reset();
                }
                self.downtime.push(DowntimeInterval {
                    gpu,
                    start: Timestamp::from_micros(start),
                    end: Timestamp::from_micros(sched.now()),
                    cause,
                });
            }
            Ev::SilentClear { gpu } => {
                // Only clears if no proper repair got scheduled meanwhile.
                if !self.repair_pending.contains(&gpu) {
                    if let Some(device) = self.fleet.gpu_mut(gpu) {
                        if !device.health().is_ok() {
                            device.reset();
                        }
                    }
                }
            }
        }
    }

    fn finish(mut self) -> CampaignOutput {
        dr_xid::record::sort_records(&mut self.records);
        self.events.sort_by_key(|e| (e.at, e.gpu));
        self.downtime.sort_by_key(|d| d.start);

        let mut nodes: Vec<NodeId> = self
            .fleet
            .nodes()
            .iter()
            .take(self.cfg.text.nodes)
            .map(|n| n.id)
            .collect();
        nodes.sort_unstable();
        let text = crate::textgen::TextSpec {
            nodes,
            seed: self.cfg.seed,
            noise_per_node_hour: self.cfg.text.noise_per_node_hour,
            horizon: Duration::from_micros(self.horizon),
        };
        let text_logs = if self.cfg.text.defer {
            Vec::new()
        } else {
            crate::textgen::render_text_logs(&self.records, &text)
        };

        CampaignOutput {
            records: self.records,
            events: self.events,
            downtime: self.downtime,
            text_logs,
            text,
            fleet: self.fleet,
            duration: Duration::from_micros(self.horizon),
            offenders: self.offenders,
        }
    }
}

/// Which XID names a fault for downtime attribution.
fn fault_xid(fault: Fault) -> Xid {
    match fault {
        Fault::MemoryDbe { .. } => Xid::DoubleBitEcc,
        Fault::MemorySbe { .. } => Xid::RowRemapFailure,
        Fault::UncontainedEcc { .. } => Xid::UncontainedEcc,
        Fault::NvlinkCrc { .. } => Xid::NvlinkError,
        Fault::GspHang { .. } => Xid::GspRpcTimeout,
        Fault::PmuSpi { .. } => Xid::PmuSpiError,
        Fault::MmuFault { .. } => Xid::MmuError,
        Fault::BusDrop => Xid::FallenOffBus,
    }
}

/// Drive the engine to the horizon with the campaign as handler state.
fn engine_run(mut engine: Engine<Ev>, campaign: &mut Campaign, horizon: SimTime) {
    engine.run_until(horizon, |sched, ev| campaign.handle(sched, ev));
}

/// Pick offender GPUs per class and seed memory defects.
fn designate_offenders(
    cfg: &CampaignConfig,
    fleet: &mut Fleet,
    rng: &mut StdRng,
) -> BTreeMap<FaultClass, Vec<GpuId>> {
    let mut out = BTreeMap::new();
    // Memory-defective population: spare-exhausted parts shared by the
    // DBE and SbePair classes so RRFs concentrate there.
    let a100s = fleet.gpu_ids_of(GpuArch::A100);
    let h100s = fleet.gpu_ids_of(GpuArch::H100);
    let mem_pool: Vec<GpuId> = if a100s.is_empty() { h100s.clone() } else { a100s.clone() };
    let mut zero_spare: Vec<GpuId> = Vec::new();
    for i in 0..4.min(mem_pool.len()) {
        let id = mem_pool[(i * 97) % mem_pool.len()];
        if !zero_spare.contains(&id) {
            zero_spare.push(id);
            let Some(arch) = fleet.gpu(id).map(|g| g.arch()) else {
                continue;
            };
            if let Some(g) = fleet.gpu_mut(id) {
                *g = Gpu::defective(id, arch, cfg.tuning, 0);
            }
        }
    }

    for spec in &cfg.rates.specs {
        if spec.offenders == 0 {
            continue;
        }
        let list: Vec<GpuId> = match spec.class {
            // DBE offenders: half spare-exhausted (drive RRF), half healthy
            // (drive RRE), per the Figure 7 50/50 split.
            FaultClass::Dbe => {
                // Half the DBE offenders are spare-exhausted (RRF path),
                // half healthy (RRE path) — the Figure 7 50/50 split.
                let mut l: Vec<GpuId> = zero_spare.iter().copied().take(3).collect();
                let mut i = 13;
                while l.len() < spec.offenders as usize && i < 13 + mem_pool.len() {
                    let id = mem_pool[(i * 89) % mem_pool.len()];
                    if !l.contains(&id) {
                        l.push(id);
                    }
                    i += 1;
                }
                // Interleave so Zipf rank does not privilege either kind.
                let (a, b): (Vec<_>, Vec<_>) =
                    l.iter().partition(|g| zero_spare.contains(g));
                a.iter()
                    .zip(b.iter().chain(std::iter::repeat(a.last().unwrap_or(&l[0]))))
                    .flat_map(|(x, y)| [*x, *y])
                    .take(spec.offenders as usize)
                    .collect()
            }
            FaultClass::SbePair => zero_spare.clone(),
            _ => {
                // Generic offenders: deterministic pseudo-random picks
                // from the whole fleet.
                let pool = fleet.gpu_ids();
                let mut l = Vec::new();
                while l.len() < spec.offenders as usize && l.len() < pool.len() {
                    let id = pool[rng.gen_range(0..pool.len())];
                    if !l.contains(&id) {
                        l.push(id);
                    }
                }
                l
            }
        };
        if !list.is_empty() {
            out.insert(spec.class, list);
        }
    }
    out
}

/// Build the per-class victim-selection mixes.
fn build_mixes(
    cfg: &CampaignConfig,
    fleet: &Fleet,
    offenders: &BTreeMap<FaultClass, Vec<GpuId>>,
) -> Vec<OffenderMix> {
    cfg.rates
        .specs
        .iter()
        .map(|spec| {
            let population = match spec.class {
                // Proactive SBE remapping needs the Ampere HBM feature set.
                FaultClass::SbePair => {
                    let p = fleet.gpu_ids_of(GpuArch::A100);
                    if p.is_empty() {
                        fleet.gpu_ids_of(GpuArch::H100)
                    } else {
                        p
                    }
                }
                _ => fleet.gpu_ids(),
            };
            let population = if population.is_empty() {
                fleet.gpu_ids()
            } else {
                population
            };
            match offenders.get(&spec.class) {
                Some(list) if !list.is_empty() => OffenderMix::new(
                    population,
                    list.clone(),
                    spec.offender_share,
                    spec.offender_skew,
                ),
                _ => OffenderMix::uniform(population),
            }
        })
        .collect()
}

/// Per-XID persistence models from the Table 1 triples.
fn persistence_models() -> BTreeMap<Xid, PersistenceModel> {
    let table: [(Xid, f64, f64, f64); 14] = [
        (Xid::MmuError, 2.85, 2.80, 5.80),
        (Xid::DoubleBitEcc, 0.14, 0.12, 0.24),
        (Xid::RowRemapEvent, 0.12, 0.12, 0.12),
        (Xid::RowRemapFailure, 8.88, 2.90, 26.65),
        (Xid::NvlinkError, 0.76, 0.24, 1.18),
        (Xid::FallenOffBus, 2.71, 0.25, 12.03),
        (Xid::ContainedEcc, 0.12, 0.12, 0.14),
        (Xid::UncontainedEcc, 860.24, 75.22, 340.69),
        (Xid::GspRpcTimeout, 12.14, 0.03, 100.85),
        // XID 120 shares 119's persistence profile: both clear only once
        // the GSP is brought back by a reset.
        (Xid::GspError, 12.14, 0.03, 100.85),
        (Xid::PmuSpiError, 0.05, 0.06, 0.08),
        (Xid::GraphicsEngineException, 0.5, 0.1, 2.0),
        (Xid::ResetChannelVerifError, 0.2, 0.1, 0.5),
        (Xid::Xid136, 1.0, 0.2, 4.0),
    ];
    table
        .into_iter()
        .map(|(xid, mean, p50, p95)| (xid, PersistenceModel::calibrate(mean, p50.min(p95), p95)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn tiny_campaign_runs_and_is_deterministic() {
        let a = Campaign::run(CampaignConfig::tiny(7));
        let b = Campaign::run(CampaignConfig::tiny(7));
        assert_eq!(a.records.len(), b.records.len());
        assert_eq!(a.events.len(), b.events.len());
        assert!(!a.records.is_empty());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Campaign::run(CampaignConfig::tiny(1));
        let b = Campaign::run(CampaignConfig::tiny(2));
        assert_ne!(a.records, b.records);
    }

    #[test]
    fn records_are_time_sorted_and_in_window() {
        let out = Campaign::run(CampaignConfig::tiny(3));
        let horizon = Timestamp::EPOCH + out.duration + Duration::from_days(2);
        let mut last = Timestamp::EPOCH;
        for r in &out.records {
            assert!(r.at >= last);
            assert!(r.at <= horizon, "record far beyond horizon");
            last = r.at;
        }
    }

    #[test]
    fn bursts_stay_under_coalescing_gap() {
        // Within one episode, consecutive duplicates must be < 5 s apart.
        let out = Campaign::run(CampaignConfig::tiny(4));
        let mut by_identity: HashMap<_, Vec<Timestamp>> = HashMap::new();
        for r in &out.records {
            by_identity.entry(r.identity()).or_default().push(r.at);
        }
        let mut checked = 0;
        for times in by_identity.values() {
            for w in times.windows(2) {
                let gap = (w[1] - w[0]).as_secs_f64();
                // Either same burst (< 5 s) or separate episodes (>= 5 s).
                if gap < 5.0 {
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "expected some intra-burst duplicates");
    }

    #[test]
    fn events_cover_expected_xids() {
        // Seed-sensitive: the tiny fleet's GSP/NVLink processes are rare
        // enough that some seeds produce zero of one family. Seed 3 covers
        // all four under the vendored rand streams.
        let out = Campaign::run(CampaignConfig::tiny(3));
        assert!(out.event_count(Xid::MmuError) > 0);
        assert!(out.event_count(Xid::UncontainedEcc) > 0);
        assert!(out.event_count(Xid::GspRpcTimeout) > 0);
        assert!(out.event_count(Xid::NvlinkError) > 0);
    }

    #[test]
    fn downtime_intervals_are_well_formed() {
        let out = Campaign::run(CampaignConfig::tiny(6));
        assert!(!out.downtime.is_empty());
        for d in &out.downtime {
            assert!(d.end > d.start);
            assert!(d.duration().as_hours_f64() < 49.0);
        }
    }

    #[test]
    fn text_logs_exist_for_selected_nodes() {
        let out = Campaign::run(CampaignConfig::tiny(8));
        assert!(!out.text_logs.is_empty());
        let total_lines: usize = out.text_logs.iter().map(|(_, l)| l.len()).sum();
        assert!(total_lines > 100);
        // Lines per node are time-ordered (syslog prefix sorts within a day,
        // but we verify via re-parse in the integration tests).
        for (node, lines) in &out.text_logs {
            assert!(lines.iter().any(|l| l.contains(&node.hostname()) == false) == false || !lines.is_empty());
        }
    }

    #[test]
    fn h100_campaign_produces_section6_classes() {
        let out = Campaign::run(CampaignConfig::h100_study(11));
        assert!(out.event_count(Xid::Xid136) > 0);
        assert!(out.event_count(Xid::MmuError) > 0);
        assert_eq!(out.event_count(Xid::NvlinkError), 0);
        assert_eq!(out.event_count(Xid::GspRpcTimeout), 0);
    }

    /// Full-scale calibration check (slow; run with --ignored --release).
    #[test]
    #[ignore = "full 855-day campaign; run in release mode"]
    fn full_ampere_campaign_matches_table1_counts() {
        let out = Campaign::run(CampaignConfig::ampere_study(42));
        let targets = [
            (Xid::MmuError, 18_876.0, 0.15),
            (Xid::DoubleBitEcc, 32.0, 0.5),
            (Xid::RowRemapEvent, 95.0, 0.4),
            (Xid::RowRemapFailure, 35.0, 0.5),
            (Xid::NvlinkError, 2_987.0, 0.25),
            (Xid::FallenOffBus, 31.0, 0.5),
            (Xid::ContainedEcc, 28.0, 0.5),
            (Xid::UncontainedEcc, 38_905.0, 0.15),
            (Xid::GspRpcTimeout, 2_136.0, 0.15),
            (Xid::PmuSpiError, 128.0, 0.4),
        ];
        let mut report = String::new();
        let mut ok = true;
        for (xid, target, tol) in targets {
            let got = out.event_count(xid) as f64;
            let rel = (got - target).abs() / target;
            report.push_str(&format!("{xid}: got {got}, target {target}, rel {rel:.3}\n"));
            if rel > tol {
                ok = false;
            }
        }
        println!("{report}");
        println!(
            "records: {}, events: {}, downtime intervals: {}",
            out.records.len(),
            out.events.len(),
            out.downtime.len()
        );
        let lost_h: f64 = out.downtime.iter().map(|d| d.duration().as_hours_f64()).sum();
        println!("downtime node-hours: {lost_h:.0}");
        assert!(ok, "calibration off:\n{report}");
    }

    #[test]
    fn gsp_events_mostly_terminal() {
        // GSP primaries are heavily clustered, so a bare tiny campaign may
        // draw zero cluster heads; scale rates up for a reliable sample.
        let mut cfg = CampaignConfig::tiny(12);
        cfg.rates = crate::rates::ClassRates::ampere_delta().scale_all(3.0);
        let out = Campaign::run(cfg);
        let gsp_events: Vec<_> = out
            .events
            .iter()
            .filter(|e| e.xid == Xid::GspRpcTimeout)
            .collect();
        assert!(!gsp_events.is_empty());
        let lost = gsp_events
            .iter()
            .filter(|e| e.consequence == Consequence::GpuLost)
            .count();
        assert_eq!(lost, gsp_events.len(), "every GSP hang loses the GPU");
    }
}
