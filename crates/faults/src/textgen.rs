//! Streaming syslog text generation for the campaign's text-node subset.
//!
//! The campaign used to render the full per-node `Vec<String>` corpus in
//! one shot at `finish()` time — the exact anti-pattern the paper's
//! 202 GB Stage I corpus forbids. This module turns rendering into a
//! *lazy per-node line stream*: [`NodeTextStream`] merges a node's
//! recorded NVRM lines with its Poisson background noise on demand, one
//! line at a time, so a consumer (the `GeneratorSource` in
//! `resilience-core::source`, or a disk writer) never holds more than
//! its own buffer of text.
//!
//! Determinism contract: every randomized choice (the pid on
//! `GraphicsEngineException` lines, noise arrival gaps, noise payloads)
//! comes from *per-node* RNG streams derived from the campaign seed via
//! [`dr_des::RngStreams`]. Node streams are therefore independent — they
//! can be drained in any order, partially, or twice, and always yield
//! the same lines. Materializing every stream ([`render_text_logs`]) is
//! bit-identical to streaming them, which is what makes the
//! campaign→text→analysis path testable at both ends.
//!
//! Ordering matches the eager renderer it replaces: lines are emitted in
//! timestamp order, with record lines winning ties against noise (the
//! old stable sort pushed record lines first).

use dr_des::RngStreams;
use dr_stats::dist::Sampler;
use dr_stats::Exp;
use dr_xid::syslog::{format_line, format_noise_line};
use dr_xid::{Duration, ErrorRecord, NodeId, Timestamp, Xid};
use rand::rngs::StdRng;
use rand::Rng;

/// RNG stream salt for per-node pid draws (`GraphicsEngineException`).
const PID_SALT: u64 = 0x9e1d_70f3_51d5_a117;
/// RNG stream salt for per-node background-noise draws.
const NOISE_SALT: u64 = 0x2b4c_99e0_0d3e_b681;

/// Everything needed to (re)generate the text corpus of a campaign:
/// which nodes carry text, the master seed the per-node streams derive
/// from, the background noise rate, and the campaign horizon.
#[derive(Clone, Debug)]
pub struct TextSpec {
    /// Text-bearing nodes, sorted ascending.
    pub nodes: Vec<NodeId>,
    /// Campaign master seed; per-node streams derive from it.
    pub seed: u64,
    /// Unrelated syslog noise per node per hour.
    pub noise_per_node_hour: f64,
    /// Campaign duration (noise stops at the horizon).
    pub horizon: Duration,
}

impl TextSpec {
    /// A spec with no text nodes: renders nothing.
    pub fn empty() -> Self {
        TextSpec {
            nodes: Vec::new(),
            seed: 0,
            noise_per_node_hour: 0.0,
            horizon: Duration::from_micros(0),
        }
    }
}

/// Lazy line stream for one node: the node's time-sorted records merged
/// with its Poisson noise process, yielded one rendered line at a time.
pub struct NodeTextStream<'a> {
    node: NodeId,
    /// This node's records, in time order (borrowed from the campaign).
    records: Vec<&'a ErrorRecord>,
    next_rec: usize,
    pid_rng: StdRng,
    noise_rng: StdRng,
    /// `None` once the noise process passed the horizon (or rate == 0).
    noise_exp: Option<Exp>,
    noise_t_h: f64,
    horizon_h: f64,
    pending_noise: Option<(Timestamp, String)>,
}

impl<'a> NodeTextStream<'a> {
    fn new(node: NodeId, records: Vec<&'a ErrorRecord>, spec: &TextSpec) -> Self {
        let streams = RngStreams::new(spec.seed);
        let noise_exp = if spec.noise_per_node_hour > 0.0 {
            Some(Exp::new(spec.noise_per_node_hour))
        } else {
            None
        };
        NodeTextStream {
            node,
            records,
            next_rec: 0,
            pid_rng: streams.stream2(PID_SALT, node.0 as u64),
            noise_rng: streams.stream2(NOISE_SALT, node.0 as u64),
            noise_exp,
            noise_t_h: 0.0,
            horizon_h: spec.horizon.as_hours_f64(),
            pending_noise: None,
        }
    }

    /// The node this stream renders.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Ensure `pending_noise` holds the next noise line, if any remain.
    /// Gap and payload draws are interleaved per line exactly like the
    /// eager renderer (sample gap, then payload byte).
    fn refill_noise(&mut self) {
        if self.pending_noise.is_some() {
            return;
        }
        let Some(exp) = &self.noise_exp else { return };
        self.noise_t_h += exp.sample(&mut self.noise_rng);
        if self.noise_t_h >= self.horizon_h {
            self.noise_exp = None;
            return;
        }
        let at = Timestamp::EPOCH + Duration::from_secs_f64(self.noise_t_h * 3_600.0);
        let line = format_noise_line(at, self.node, self.noise_rng.gen());
        self.pending_noise = Some((at, line));
    }

    fn render_record(&mut self, rec: &ErrorRecord) -> String {
        let pid = if matches!(rec.xid, Xid::GraphicsEngineException) {
            self.pid_rng.gen_range(1_000..60_000)
        } else {
            0
        };
        format_line(rec, pid)
    }
}

impl<'a> Iterator for NodeTextStream<'a> {
    type Item = String;

    fn next(&mut self) -> Option<String> {
        self.refill_noise();
        let rec_at = self.records.get(self.next_rec).map(|r| r.at);
        match (rec_at, &self.pending_noise) {
            // Noise goes first only when strictly earlier: on timestamp
            // ties the record line wins, matching the old stable sort.
            (Some(ra), Some((na, _))) if *na < ra => {
                self.pending_noise.take().map(|(_, line)| line)
            }
            (Some(_), _) => {
                let rec = self.records[self.next_rec];
                self.next_rec += 1;
                Some(self.render_record(rec))
            }
            (None, Some(_)) => self.pending_noise.take().map(|(_, line)| line),
            (None, None) => None,
        }
    }
}

/// One [`NodeTextStream`] per spec node (ascending), each borrowing its
/// slice of `records`. Nodes without records still get a (noise-only)
/// stream so every selected node produces a log.
pub fn node_streams<'a>(
    records: &'a [ErrorRecord],
    spec: &TextSpec,
) -> Vec<(NodeId, NodeTextStream<'a>)> {
    let mut buckets: Vec<Vec<&'a ErrorRecord>> = vec![Vec::new(); spec.nodes.len()];
    for rec in records {
        if let Ok(i) = spec.nodes.binary_search(&rec.gpu.node) {
            buckets[i].push(rec);
        }
    }
    spec.nodes
        .iter()
        .zip(buckets)
        .map(|(&node, bucket)| (node, NodeTextStream::new(node, bucket, spec)))
        .collect()
}

/// Materialize every node stream. Bit-identical to draining the streams
/// chunk-wise (it *is* a drain), used by callers that still want the
/// whole corpus in memory — tiny campaigns, tests.
pub fn render_text_logs(records: &[ErrorRecord], spec: &TextSpec) -> Vec<(NodeId, Vec<String>)> {
    node_streams(records, spec)
        .into_iter()
        .map(|(node, stream)| (node, stream.collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::{ErrorDetail, GpuId, PciAddr};

    fn spec(nodes: &[u32]) -> TextSpec {
        TextSpec {
            nodes: nodes.iter().map(|&n| NodeId(n)).collect(),
            seed: 42,
            noise_per_node_hour: 3.0,
            horizon: Duration::from_secs_f64(48.0 * 3_600.0),
        }
    }

    fn rec(node: u32, minute: u32) -> ErrorRecord {
        ErrorRecord::new(
            Timestamp::EPOCH + Duration::from_secs_f64(minute as f64 * 60.0),
            GpuId::new(NodeId(node), PciAddr::new(0, 1, 0)),
            Xid::GraphicsEngineException,
            ErrorDetail::NONE,
        )
    }

    #[test]
    fn streams_are_deterministic_and_order_independent() {
        let records = vec![rec(1, 5), rec(2, 7), rec(1, 90)];
        let s = spec(&[1, 2]);
        let eager = render_text_logs(&records, &s);
        // Drain node 2 first, then node 1: per-node RNG streams make the
        // output independent of drain order.
        let mut streams = node_streams(&records, &s);
        let (n2, s2) = streams.pop().unwrap();
        let (n1, s1) = streams.pop().unwrap();
        let flipped = vec![(n1, s1.collect::<Vec<_>>()), (n2, s2.collect())];
        assert_eq!(eager, flipped);
        // And a second full render is bit-identical.
        assert_eq!(eager, render_text_logs(&records, &s));
    }

    #[test]
    fn lines_are_time_ordered_with_records_before_noise() {
        let records = vec![rec(3, 1), rec(3, 2), rec(3, 3)];
        let s = spec(&[3]);
        let logs = render_text_logs(&records, &s);
        assert_eq!(logs.len(), 1);
        let lines = &logs[0].1;
        // All three record lines present plus some noise.
        let nvrm = lines.iter().filter(|l| l.contains("NVRM")).count();
        assert_eq!(nvrm, 3);
        assert!(lines.len() > 3, "noise at 3/h over 48h must appear");
    }

    #[test]
    fn nodes_outside_the_spec_are_ignored() {
        let records = vec![rec(9, 1)];
        let s = spec(&[1]);
        let logs = render_text_logs(&records, &s);
        assert_eq!(logs.len(), 1);
        assert!(logs[0].1.iter().all(|l| !l.contains("NVRM")));
    }

    #[test]
    fn zero_noise_rate_yields_records_only() {
        let records = vec![rec(1, 1), rec(1, 2)];
        let mut s = spec(&[1]);
        s.noise_per_node_hour = 0.0;
        let logs = render_text_logs(&records, &s);
        assert_eq!(logs[0].1.len(), 2);
    }
}
