//! # dr-faults — fault processes and the injection campaign
//!
//! The generative side of the reproduction. Since the underlying fault
//! processes of a production system are unobservable, they are modeled as
//! stochastic processes whose *rates* are calibrated from Table 1, and
//! everything downstream — bursty duplicated log lines, propagation chains,
//! persistence durations, offender skew — is produced mechanistically so
//! the analysis pipeline has real work to do:
//!
//! - [`persistence`]: per-XID error persistence models (capped log-normal
//!   body plus a rare heavy tail) calibrated from Table 1's
//!   mean/P50/P95 triples.
//! - [`offenders`]: defective-GPU mixtures — a handful of parts carry the
//!   overwhelming majority of memory errors (Section 4.2 (iii)).
//! - [`rates`]: the campaign's per-error-class arrival rates with
//!   Delta-calibrated defaults.
//! - [`campaign`]: the 855-day discrete-event injection campaign over a
//!   [`dr_cluster::Fleet`], producing raw error records, ground-truth
//!   events, downtime intervals, and (for a configurable node subset)
//!   full syslog text.
//! - [`scenario`]: the scripted incident replays of Figures 1 and 8.

pub mod campaign;
pub mod offenders;
pub mod persistence;
pub mod rates;
pub mod scenario;
pub mod textgen;



pub use campaign::{
    Campaign, CampaignConfig, CampaignOutput, DowntimeInterval, ErrorEvent, RepairConfig,
    TextConfig,
};
pub use offenders::OffenderMix;
pub use persistence::PersistenceModel;
pub use scenario::{all_scenarios, Scenario};
pub use rates::{ClassRates, ClassSpec, FaultClass};
pub use textgen::{NodeTextStream, TextSpec};

