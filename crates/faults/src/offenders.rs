//! Defective-GPU ("top offender") target selection.
//!
//! A central field observation (Section 4.2 (iii)): uncontained memory
//! errors, DBEs, and RRFs concentrate on a *handful* of defective GPUs —
//! over 90 % of the 38,000+ uncontained errors came from a few GPUs, one
//! of which contributed 99 %; DBEs hit 6 of 848 Ampere GPUs, RRFs 4.
//! The counterfactual analysis (Section 5.5) removes exactly these parts.
//!
//! [`OffenderMix`] selects a fault's victim: with probability
//! `offender_share` one of the designated offender GPUs (Zipf-weighted so
//! one part dominates), otherwise a uniformly random GPU.

use dr_stats::Categorical;
use dr_xid::GpuId;
use rand::Rng;

/// A skewed victim-selection mixture.
#[derive(Clone, Debug)]
pub struct OffenderMix {
    /// The designated defective parts.
    offenders: Vec<GpuId>,
    /// Zipf-like weights over `offenders` (first is heaviest).
    weights: Option<Categorical>,
    /// Probability a fault lands on an offender at all.
    offender_share: f64,
    /// The rest of the population.
    population: Vec<GpuId>,
}

impl OffenderMix {
    /// Build a mix. `skew` shapes the Zipf weights `1/rank^skew` over the
    /// offenders: `skew = 0` spreads evenly, `skew = 4` makes the first
    /// offender dominate (~99 % of offender hits with 4 offenders).
    ///
    /// # Panics
    /// If `population` is empty or `offender_share > 0` with no offenders.
    pub fn new(population: Vec<GpuId>, offenders: Vec<GpuId>, offender_share: f64, skew: f64) -> Self {
        assert!(!population.is_empty(), "population must be non-empty");
        let offender_share = offender_share.clamp(0.0, 1.0);
        assert!(
            offender_share == 0.0 || !offenders.is_empty(),
            "offender share without offenders"
        );
        let weights = (!offenders.is_empty()).then(|| {
            let w: Vec<f64> = (1..=offenders.len())
                .map(|rank| 1.0 / (rank as f64).powf(skew))
                .collect();
            Categorical::new(&w)
        });
        OffenderMix {
            offenders,
            weights,
            offender_share,
            population,
        }
    }

    /// Uniform selection with no offender population.
    pub fn uniform(population: Vec<GpuId>) -> Self {
        OffenderMix::new(population, Vec::new(), 0.0, 0.0)
    }

    /// The designated offenders.
    pub fn offenders(&self) -> &[GpuId] {
        &self.offenders
    }

    /// Pick a victim.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R) -> GpuId {
        if let Some(w) = &self.weights {
            if rng.gen::<f64>() < self.offender_share {
                return self.offenders[w.sample_index(rng)];
            }
        }
        self.population[rng.gen_range(0..self.population.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_xid::NodeId;
    use rand::prelude::*;
    
    use std::collections::HashMap;

    fn population(n: u32) -> Vec<GpuId> {
        (0..n).map(|i| GpuId::at_slot(NodeId(i / 4), (i % 4) as usize)).collect()
    }

    #[test]
    fn offenders_dominate_with_high_share() {
        let pop = population(848);
        let offenders = pop[..4].to_vec();
        let mix = OffenderMix::new(pop.clone(), offenders.clone(), 0.99, 4.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts: HashMap<GpuId, u64> = HashMap::new();
        let n = 50_000;
        for _ in 0..n {
            *counts.entry(mix.pick(&mut rng)).or_default() += 1;
        }
        let offender_hits: u64 = offenders.iter().filter_map(|o| counts.get(o)).sum();
        let share = offender_hits as f64 / n as f64;
        assert!(share > 0.95, "offender share {share}");
        // Zipf skew 4: the first offender takes ~94% of offender hits
        // (1 / (1 + 2^-4 + 3^-4 + 4^-4)).
        let first = *counts.get(&offenders[0]).unwrap() as f64;
        assert!(first / offender_hits as f64 > 0.90);
    }

    #[test]
    fn uniform_mix_spreads_errors() {
        let pop = population(100);
        let mix = OffenderMix::uniform(pop.clone());
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts: HashMap<GpuId, u64> = HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(mix.pick(&mut rng)).or_default() += 1;
        }
        // Every GPU hit, none wildly over-represented.
        assert_eq!(counts.len(), 100);
        let max = *counts.values().max().unwrap();
        assert!(max < 1_400, "max {max}");
    }

    #[test]
    fn zero_share_ignores_offenders() {
        let pop = population(10);
        let mix = OffenderMix::new(pop.clone(), pop[..1].to_vec(), 0.0, 4.0);
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| mix.pick(&mut rng) == pop[0]).count();
        // Only uniform probability (1/10), not inflated.
        assert!((hits as f64 / 10_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    #[should_panic]
    fn share_without_offenders_panics() {
        OffenderMix::new(population(4), Vec::new(), 0.5, 1.0);
    }
}
