//! Per-XID error-persistence models.
//!
//! Table 1 reports (mean, P50, P95) of the *persistence duration* — how
//! long an error keeps being re-logged before the burst ends. Several rows
//! are strongly heavy-tailed (uncontained memory errors: P50 = 75 s but
//! mean = 860 s; GSP: P50 = 0.03 s but mean = 12 s), which a single
//! log-normal cannot express while also matching the P95. We therefore use
//! a two-component mixture:
//!
//! * **body** — log-normal matched exactly to (P50, P95), winsorized at
//!   `3 × P95` so its closed-form capped mean stays finite even for very
//!   skewed quantile pairs;
//! * **tail** — with small probability `q`, a long episode capped at the
//!   paper's one-day persistence cut-off. `q` and the tail magnitude are
//!   solved so the mixture mean equals the target mean.
//!
//! This mirrors the field data's structure: the bulk of bursts are short,
//! while rare storms (the 17-consecutive-day uncontained-error incident)
//! dominate the summed lost time — the paper's Section 4.3 finding that
//! 91 % of lost GPU hours sit beyond the P95.

use dr_stats::dist::Sampler;
use dr_stats::LogNormal;
use dr_xid::Duration;
use rand::Rng;

/// The one-day persistence cut-off used by the paper (Section 3.2).
pub const PERSISTENCE_CAP_S: f64 = 86_400.0;

/// A calibrated persistence distribution.
#[derive(Clone, Copy, Debug)]
pub struct PersistenceModel {
    body: LogNormal,
    body_cap: f64,
    /// Probability of a tail episode.
    q_tail: f64,
    /// Tail episode duration distribution (log-normal, capped at one day).
    tail: LogNormal,
}

impl PersistenceModel {
    /// Calibrate from a Table 1 (mean, p50, p95) triple, all in seconds.
    ///
    /// # Panics
    /// If the quantiles are not ordered `0 < p50 <= p95`.
    pub fn calibrate(mean: f64, p50: f64, p95: f64) -> Self {
        assert!(p50 > 0.0 && p95 >= p50, "need 0 < p50 <= p95");
        let tail = LogNormal::from_median_p95(PERSISTENCE_CAP_S / 4.0, PERSISTENCE_CAP_S);
        let tail_mean = tail.capped_mean(PERSISTENCE_CAP_S);

        // The mixture's P95 is the body's quantile at 0.95/(1-q) (tail
        // values sit above the body), so the body's sigma depends on q,
        // and q (solved from the mean equation) depends on the body's
        // mean. A short fixed-point iteration settles both.
        let mut q = 0.0f64;
        let mut body = LogNormal::from_median_p95(p50, p95);
        let mut body_cap = (3.0 * p95).min(PERSISTENCE_CAP_S);
        for _ in 0..8 {
            let alpha = (0.95 / (1.0 - q)).min(0.9995);
            let z = dr_stats::dist::normal_quantile(alpha);
            let sigma = if p95 > p50 {
                (p95.ln() - p50.ln()) / z
            } else {
                0.0
            };
            body = LogNormal::new(p50.ln(), sigma);
            body_cap = (3.0 * p95).min(PERSISTENCE_CAP_S);
            let bm = body.capped_mean(body_cap);
            if mean <= bm {
                // The body alone reaches (or overshoots) the target mean:
                // no tail. (Overshoot happens when the reported mean sits
                // below what the quantiles imply; we privilege quantiles.)
                q = 0.0;
                break;
            }
            q = ((mean - bm) / (tail_mean - bm)).clamp(0.0, 0.045);
        }
        PersistenceModel {
            body,
            body_cap,
            q_tail: q,
            tail,
        }
    }

    /// The analytic mean of the mixture (seconds).
    pub fn mean_s(&self) -> f64 {
        (1.0 - self.q_tail) * self.body.capped_mean(self.body_cap)
            + self.q_tail * self.tail.capped_mean(PERSISTENCE_CAP_S)
    }

    /// Tail probability `q`.
    pub fn q_tail(&self) -> f64 {
        self.q_tail
    }

    /// Draw one persistence duration.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let s = if self.q_tail > 0.0 && rng.gen::<f64>() < self.q_tail {
            self.tail.sample(rng).min(PERSISTENCE_CAP_S)
        } else {
            self.body.sample(rng).min(self.body_cap)
        };
        Duration::from_secs_f64(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dr_stats::SummaryStats;
    use rand::prelude::*;

    /// All ten Table 1 persistence rows: (xid, mean, p50, p95).
    pub const TABLE1_PERSISTENCE: [(u16, f64, f64, f64); 10] = [
        (31, 2.85, 2.80, 5.80),
        (48, 0.14, 0.12, 0.24),
        (63, 0.12, 0.12, 0.12),
        (64, 8.88, 2.90, 26.65),
        (74, 0.76, 0.24, 1.18),
        (79, 2.71, 0.25, 12.03),
        (94, 0.12, 0.12, 0.14),
        (95, 860.24, 75.22, 340.69),
        (119, 12.14, 0.03, 100.85),
        (122, 0.05, 0.06, 0.08),
    ];

    fn recovered(model: &PersistenceModel, n: usize, seed: u64) -> SummaryStats {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..n).map(|_| model.sample(&mut rng).as_secs_f64()).collect();
        SummaryStats::from_samples(&samples)
    }

    #[test]
    fn p50_is_recovered_for_every_table1_row() {
        for &(xid, mean, p50, p95) in &TABLE1_PERSISTENCE {
            let m = PersistenceModel::calibrate(mean, p50, p95);
            let s = recovered(&m, 60_000, xid as u64);
            assert!(
                (s.p50 - p50).abs() / p50 < 0.10,
                "XID {xid}: p50 {} vs target {p50}",
                s.p50
            );
        }
    }

    #[test]
    fn p95_is_approximately_recovered() {
        // The tail component may push P95 up slightly; allow 25 %.
        for &(xid, mean, p50, p95) in &TABLE1_PERSISTENCE {
            let m = PersistenceModel::calibrate(mean, p50, p95);
            let s = recovered(&m, 60_000, 1000 + xid as u64);
            assert!(
                (s.p95 - p95).abs() / p95 < 0.25,
                "XID {xid}: p95 {} vs target {p95}",
                s.p95
            );
        }
    }

    #[test]
    fn heavy_tailed_rows_recover_their_mean() {
        // The two strongly bimodal rows are the interesting ones: the
        // mixture must lift the mean far above the median.
        for &(xid, mean, p50, p95) in &TABLE1_PERSISTENCE {
            let m = PersistenceModel::calibrate(mean, p50, p95);
            let s = recovered(&m, 400_000, 2000 + xid as u64);
            // Within 30 % or within the quantile-implied floor.
            let floor = m.mean_s();
            let target = mean.max(floor * 0.999);
            assert!(
                (s.mean - target).abs() / target < 0.30,
                "XID {xid}: mean {} vs target {target} (paper {mean})",
                s.mean
            );
        }
    }

    #[test]
    fn analytic_mean_matches_sampled_mean() {
        let m = PersistenceModel::calibrate(860.24, 75.22, 340.69);
        let s = recovered(&m, 400_000, 7);
        assert!(
            (s.mean - m.mean_s()).abs() / m.mean_s() < 0.05,
            "sampled {} vs analytic {}",
            s.mean,
            m.mean_s()
        );
        assert!(m.q_tail() > 0.0, "XID 95 needs a tail component");
    }

    #[test]
    fn samples_never_exceed_the_one_day_cap() {
        let m = PersistenceModel::calibrate(860.24, 75.22, 340.69);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200_000 {
            assert!(m.sample(&mut rng).as_secs_f64() <= PERSISTENCE_CAP_S);
        }
    }

    #[test]
    fn light_tailed_row_has_no_tail_component() {
        // XID 63 (RRE): mean == p50 == p95 == 0.12 — degenerate, no tail.
        let m = PersistenceModel::calibrate(0.12, 0.12, 0.12);
        assert_eq!(m.q_tail(), 0.0);
        let s = recovered(&m, 10_000, 4);
        assert!((s.mean - 0.12).abs() < 0.01);
    }

    #[test]
    #[should_panic]
    fn rejects_disordered_quantiles() {
        PersistenceModel::calibrate(1.0, 5.0, 2.0);
    }
}
