//! Scripted incident replays (Figure 1 and Figure 8).
//!
//! Each scenario drives real device state machines — the same
//! [`dr_gpu::Gpu`] objects the campaign uses — through the exact sequence
//! the paper narrates, and emits a timestamped trace mixing NVRM log
//! lines, scheduler events, and operator actions. The `incident_replay`
//! example prints these traces.

use dr_gpu::{Fault, Gpu, GpuArch, Health, RasTuning};
use dr_xid::syslog::format_line;
use dr_xid::{Duration, ErrorRecord, GpuId, NodeId, Timestamp, Xid};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One replayed incident.
#[derive(Clone, Debug)]
pub struct Scenario {
    pub name: &'static str,
    pub description: &'static str,
    /// Timestamped trace lines in order.
    pub trace: Vec<(Timestamp, String)>,
    /// Node hours lost in the incident.
    pub node_hours_lost: f64,
}

impl Scenario {
    /// Render the trace as text.
    pub fn render(&self) -> String {
        let mut s = format!("=== {} ===\n{}\n\n", self.name, self.description);
        for (at, line) in &self.trace {
            s.push_str(&format!("[{}] {}\n", at.iso8601(), line));
        }
        s.push_str(&format!("\n-> node hours lost: {:.1}\n", self.node_hours_lost));
        s
    }
}

fn log_line(at: Timestamp, gpu: GpuId, xid: Xid, unit: u16, qual: u32) -> String {
    let rec = ErrorRecord::new(at, gpu, xid, dr_xid::ErrorDetail::new(unit, qual));
    format_line(&rec, 0)
}

/// Figure 1: a GSP RPC timeout stalls GPU control functions; the job on
/// the GPU fails; the node is drained and rebooted; total recovery takes
/// 23 node-hours.
pub fn figure1_gsp_incident() -> Scenario {
    let node = NodeId(117);
    let gpu_id = GpuId::at_slot(node, 2);
    let mut gpu = Gpu::new(gpu_id, GpuArch::A100, RasTuning::default());
    let mut rng = StdRng::seed_from_u64(0x6517);

    let t0 = Timestamp::from_civil(2023, 3, 14, 2, 17, 45).expect("valid date");
    let mut trace = Vec::new();

    // 1. The GSP stops answering RPCs.
    let result = gpu.inject(Fault::GspHang { function: 76 }, &mut rng);
    for e in &result.emissions {
        trace.push((t0 + e.delay, log_line(t0 + e.delay, gpu_id, e.xid, 0, 76)));
    }
    assert!(matches!(gpu.health(), Health::Lost { .. }));
    trace.push((
        t0 + Duration::from_secs(1),
        "nvidia-smi: Unable to determine the device handle for GPU0000:47:00.0: Unknown Error"
            .to_string(),
    ));

    // 2. The job scheduled on that GPU fails.
    let t_job = t0 + Duration::from_secs(8);
    trace.push((
        t_job,
        "slurmctld: error: Job 2183347 on gpub117 failed: JobState=FAILED ExitCode=137".to_string(),
    ));

    // 3. SREs drain the node: pending jobs complete elsewhere, no new work.
    let t_drain = t0 + Duration::from_mins(11);
    trace.push((
        t_drain,
        "slurmctld: update_node: node gpub117 state set to DRAINING reason 'XID 119 GSP timeout'"
            .to_string(),
    ));

    // 4. Existing jobs finish over the next ~22 hours; node reboots.
    let t_reboot = t0 + Duration::from_hours(22) + Duration::from_mins(40);
    trace.push((
        t_reboot,
        "systemd[1]: Reached target Reboot. (node gpub117 rebooting to reload GSP firmware)"
            .to_string(),
    ));
    gpu.reset();
    let t_up = t0 + Duration::from_hours(23);
    trace.push((
        t_up,
        "slurmctld: node gpub117 returned to service after health check (state=IDLE)".to_string(),
    ));
    assert!(gpu.health().is_ok());

    Scenario {
        name: "Figure 1: GSP RPC timeout -> node drain -> 23-hour recovery",
        description: "A GSP error stalled GPU control functions and rendered the GPU \
                      inoperable. The user job on that GPU failed, the node was drained \
                      (pending jobs allowed to finish) and fully rebooted. Total \
                      recovery: 23 node-hours.",
        trace,
        node_hours_lost: (t_up - t0).as_hours_f64(),
    }
}

/// Figure 8, Incident 1: an NVLink error on one GPU fails a 4-node job
/// with a segmentation fault (EXITSTATUS 139).
pub fn incident1_nvlink_mpi() -> Scenario {
    let node = NodeId(42);
    let gpu_id = GpuId::at_slot(node, 1);
    let mut gpu = Gpu::new(gpu_id, GpuArch::A100, RasTuning::default());
    // Force the error-state branch deterministically: hammer the link past
    // its down threshold (the mechanism behind fatal NVLink errors).
    let mut rng = StdRng::seed_from_u64(0x74);
    let t0 = Timestamp::from_civil(2023, 7, 2, 14, 3, 12).expect("valid date");
    let mut trace = Vec::new();

    let mut t = t0;
    for _ in 0..gpu.tuning().nvlink_down_threshold {
        let r = gpu.inject(Fault::NvlinkCrc { link: 3 }, &mut rng);
        for e in &r.emissions {
            trace.push((t + e.delay, log_line(t + e.delay, gpu_id, e.xid, 3, 0x10003)));
        }
        if gpu.nvlink.any_down() {
            break;
        }
        t += Duration::from_secs(7);
    }
    assert!(gpu.nvlink.any_down(), "link must go down");
    assert!(gpu.health().needs_reset());

    let t_mpi = t + Duration::from_secs(2);
    trace.push((
        t_mpi,
        "MPICH ERROR: NVLink transmission error detected on rank 9 (gpub042): \
         cudaErrorUnknown, communication with peer GPU failed"
            .to_string(),
    ));
    let t_fail = t + Duration::from_secs(5);
    trace.push((
        t_fail,
        "slurmctld: Job 2411190 (4 nodes, 4 GPUs) failed: JobState=FAILED ExitCode=139 \
         (Segmentation fault)"
            .to_string(),
    ));
    trace.push((
        t_fail + Duration::from_mins(9),
        "operator: manual GPU reset issued on gpub042 GPU1 to retrain NVLinks".to_string(),
    ));

    Scenario {
        name: "Figure 8, Incident 1: NVLink error fails a 4-node job",
        description: "One GPU's NVLink went down mid-run; MPI surfaced it as a \
                      communication error and the whole 4-node job died with \
                      EXITSTATUS 139. One malfunctioning GPU took out every rank.",
        trace,
        node_hours_lost: 0.3,
    }
}

/// Figure 8, Incident 2: a PMU SPI communication error propagates to an
/// MMU error, killing the job (the Figure 5 0.82 edge).
pub fn incident2_pmu_mmu() -> Scenario {
    let node = NodeId(203);
    let gpu_id = GpuId::at_slot(node, 0);
    let mut gpu = Gpu::new(gpu_id, GpuArch::A100, RasTuning::default());
    let t0 = Timestamp::from_civil(2024, 1, 19, 9, 41, 3).expect("valid date");
    let mut trace = Vec::new();

    // Find a seed whose roll takes the PMU -> MMU branch (p = 0.82).
    let mut chosen = None;
    for seed in 0..64 {
        let mut probe = gpu.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let r = probe.inject(Fault::PmuSpi { addr: 0x84 }, &mut rng);
        if r.emissions.iter().any(|e| e.xid == Xid::MmuError) {
            chosen = Some(seed);
            break;
        }
    }
    let seed = chosen.expect("a cascading seed exists");
    let mut rng = StdRng::seed_from_u64(seed);
    let result = gpu.inject(Fault::PmuSpi { addr: 0x84 }, &mut rng);
    for e in &result.emissions {
        trace.push((t0 + e.delay, log_line(t0 + e.delay, gpu_id, e.xid, e.detail.unit, e.detail.qualifier)));
    }
    assert!(gpu.pmu.is_degraded() || gpu.mmu.hw_faults() > 0);
    trace.push((
        t0 + Duration::from_secs(2),
        "nvidia-smi: clocks event reasons: SW power cap active; clock change request failed"
            .to_string(),
    ));
    let t_fail = t0 + Duration::from_secs(6);
    trace.push((
        t_fail,
        "slurmctld: Job 2551204 on gpub203 failed: JobState=FAILED ExitCode=134 \
         (CUDA error: an illegal memory access was encountered)"
            .to_string(),
    ));

    Scenario {
        name: "Figure 8, Incident 2: PMU SPI error -> MMU error -> job failure",
        description: "A failed SPI read from the PMU broke MMU power management; the \
                      resulting MMU error killed the job. Peripheral hardware and its \
                      communication channels are resilience weak links.",
        trace,
        node_hours_lost: 0.2,
    }
}

/// Section 4.4.3's storm: an uncontained memory error persisted for 17
/// days (May 5–21, 2022) without recovery, spamming the console with over
/// a million duplicated log entries, because no monitoring triggered a
/// GPU reset. Replayed at coarse granularity: the trace shows one line per
/// day plus the analysis view (what coalescing turns the storm into).
pub fn storm_17_days() -> Scenario {
    let node = NodeId(61);
    let gpu_id = GpuId::at_slot(node, 3);
    let mut gpu = Gpu::new(gpu_id, GpuArch::A100, RasTuning::default());
    let mut rng = StdRng::seed_from_u64(0x95);
    let t0 = Timestamp::from_civil(2022, 5, 5, 7, 22, 10).expect("valid date");
    let mut trace = Vec::new();

    let r = gpu.inject(
        Fault::UncontainedEcc {
            partition: 0x2,
            slice: 0x31,
        },
        &mut rng,
    );
    assert!(gpu.health().needs_reset());
    for e in &r.emissions {
        trace.push((t0 + e.delay, log_line(t0 + e.delay, gpu_id, e.xid, 0x2, 0x31)));
    }
    // One representative duplicated line per day; the real storm logged
    // every few seconds (~1.2M lines over 17 days).
    for day in 1..17u64 {
        let at = t0 + Duration::from_days(day);
        trace.push((
            at,
            format!(
                "{} (storm continues: ~{}k duplicated lines so far)",
                log_line(at, gpu_id, Xid::UncontainedEcc, 0x2, 0x31),
                day * 72
            ),
        ));
    }
    let t_found = t0 + Duration::from_days(16) + Duration::from_hours(9);
    trace.push((
        t_found,
        "operator: console spam on gpub061 finally investigated; manual GPU reset issued"
            .to_string(),
    ));
    gpu.reset();
    trace.push((
        t_found + Duration::from_mins(20),
        "slurmctld: node gpub061 returned to service (state=IDLE)".to_string(),
    ));
    assert!(gpu.health().is_ok());

    Scenario {
        name: "Section 4.4.3: the 17-day uncontained memory error storm",
        description: "Error containment failed; the uncontained error re-logged for 17                       consecutive days because nothing monitored for it. In the coalesced                       view this appears as a chain of day-capped XID 95 errors — the tail                       that carries 91% of all lost GPU hours.",
        trace,
        node_hours_lost: 16.0 * 24.0 + 9.3,
    }
}

/// All scripted scenarios.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        figure1_gsp_incident(),
        incident1_nvlink_mpi(),
        incident2_pmu_mmu(),
        storm_17_days(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_takes_23_node_hours() {
        let s = figure1_gsp_incident();
        assert!((s.node_hours_lost - 23.0).abs() < 0.01);
        assert!(s.trace.iter().any(|(_, l)| l.contains("119")));
        assert!(s.trace.iter().any(|(_, l)| l.contains("DRAINING")));
        // Trace is time-ordered.
        for w in s.trace.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn incident1_ends_in_segfault() {
        let s = incident1_nvlink_mpi();
        assert!(s.trace.iter().any(|(_, l)| l.contains("ExitCode=139")));
        assert!(s.trace.iter().any(|(_, l)| l.contains("NVLink")));
    }

    #[test]
    fn incident2_shows_both_xids() {
        let s = incident2_pmu_mmu();
        let text: String = s.trace.iter().map(|(_, l)| l.as_str()).collect();
        assert!(text.contains("): 122,"), "PMU SPI line missing");
        assert!(text.contains("): 31,"), "MMU line missing");
    }

    #[test]
    fn storm_spans_17_days() {
        let s = storm_17_days();
        assert!(s.node_hours_lost > 380.0);
        let first = s.trace.first().unwrap().0;
        let last = s.trace.last().unwrap().0;
        assert!((last - first).as_hours_f64() > 16.0 * 24.0);
        assert!(s.trace.iter().any(|(_, l)| l.contains("): 95,")));
    }

    #[test]
    fn all_scenarios_render() {
        for s in all_scenarios() {
            let text = s.render();
            assert!(text.contains(s.name));
            assert!(text.contains("node hours lost"));
        }
    }
}
