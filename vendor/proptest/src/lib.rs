//! Offline in-tree subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its property tests use: the `proptest!` macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, `any::<T>()`,
//! numeric range strategies, simple `"[class]{lo,hi}"` string strategies,
//! tuple strategies, and `collection::vec`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports its generated inputs and the
//!   assertion message, but is not minimized.
//! - **Deterministic.** Each test derives its RNG seed from the test name,
//!   so failures reproduce exactly and runs never depend on ambient entropy
//!   (which the dr-lint determinism passes forbid anyway).
//! - Fixed case count ([`CASES`]) instead of a runner config.

#![forbid(unsafe_code)]

/// Number of generated cases per property test.
pub const CASES: usize = 64;

/// Sentinel error used by `prop_assume!` to discard a case without failing.
pub const ASSUME_REJECT: &str = "__proptest_assume_reject__";

/// Deterministic generator handed to [`Strategy::sample_value`].
/// xoshiro256** seeded from the test name via FNV-1a + SplitMix64.
pub struct Gen {
    s: [u64; 4],
}

impl Gen {
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut s = [0u64; 4];
        for word in &mut s {
            h = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = h;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *word = z ^ (z >> 31);
        }
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        Gen { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "Gen::below(0)");
        self.next_u64() % n
    }
}

/// A generator of values for one property-test input.
pub trait Strategy {
    type Value;
    fn sample_value(&self, gen: &mut Gen) -> Self::Value;
}

// --- numeric ranges ---------------------------------------------------------

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + gen.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + gen.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, gen: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + gen.unit_f64() as $t * (self.end - self.start)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, gen: &mut Gen) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + gen.unit_f64() as $t * (hi - lo)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

// --- any::<T>() -------------------------------------------------------------

/// Types with a full-domain default strategy.
pub trait Arbitrary: Sized {
    fn arbitrary_value(gen: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(gen: &mut Gen) -> Self {
                gen.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(gen: &mut Gen) -> Self {
        gen.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(gen: &mut Gen) -> Self {
        gen.unit_f64()
    }
}

pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample_value(&self, gen: &mut Gen) -> T {
        T::arbitrary_value(gen)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

// --- string strategies ------------------------------------------------------

/// A `&str` is interpreted as a `"[class]{lo,hi}"` pattern: a single
/// character class (literal chars, `a-z` ranges, `\n`/`\t`/`\\`/`\-`/`\]`
/// escapes) repeated a length drawn from `lo..=hi`. This covers every string
/// strategy the workspace uses; richer regexes are deliberately unsupported.
impl Strategy for &str {
    type Value = String;

    fn sample_value(&self, gen: &mut Gen) -> String {
        let (chars, lo, hi) = parse_class_pattern(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = lo + gen.below((hi - lo + 1) as u64) as usize;
        (0..len)
            .map(|_| chars[gen.below(chars.len() as u64) as usize])
            .collect()
    }
}

fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let (class, tail) = rest.split_at(close);
    let tail = tail.strip_prefix(']')?;
    let tail = tail.strip_prefix('{')?;
    let tail = tail.strip_suffix('}')?;
    let (lo_s, hi_s) = tail.split_once(',')?;
    let lo: usize = lo_s.trim().parse().ok()?;
    let hi: usize = hi_s.trim().parse().ok()?;
    if lo > hi {
        return None;
    }

    let mut chars: Vec<char> = Vec::new();
    let raw: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < raw.len() {
        let c = match raw[i] {
            '\\' => {
                i += 1;
                match raw.get(i)? {
                    'n' => '\n',
                    't' => '\t',
                    other => *other,
                }
            }
            other => other,
        };
        // Range form `a-b` (a literal `-` at either end is plain).
        if i + 2 < raw.len() && raw[i + 1] == '-' && raw[i + 2] != ']' && raw[i] != '\\' {
            let hi_c = raw[i + 2];
            if c as u32 <= hi_c as u32 {
                for u in c as u32..=hi_c as u32 {
                    chars.push(char::from_u32(u)?);
                }
                i += 3;
                continue;
            }
        }
        chars.push(c);
        i += 1;
    }
    if chars.is_empty() {
        return None;
    }
    Some((chars, lo, hi))
}

// --- tuples -----------------------------------------------------------------

macro_rules! impl_strategy_tuple {
    ($($s:ident/$v:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample_value(&self, gen: &mut Gen) -> Self::Value {
                let ($($v,)+) = self;
                ($($v.sample_value(gen),)+)
            }
        }
    };
}
impl_strategy_tuple!(S1 / s1);
impl_strategy_tuple!(S1 / s1, S2 / s2);
impl_strategy_tuple!(S1 / s1, S2 / s2, S3 / s3);
impl_strategy_tuple!(S1 / s1, S2 / s2, S3 / s3, S4 / s4);

// --- collections ------------------------------------------------------------

pub mod collection {
    use super::{Gen, Strategy};

    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// Accepts the size forms the workspace uses (`0..200`, `1..=8`, `5`).
    pub trait IntoSizeRange {
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty vec size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self)
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { elem, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample_value(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = self.lo + gen.below((self.hi - self.lo + 1) as u64) as usize;
            (0..len).map(|_| self.elem.sample_value(gen)).collect()
        }
    }
}

pub mod bool {
    use super::{Gen, Strategy};

    pub struct AnyBool;

    /// `proptest::bool::ANY` — a uniform boolean strategy.
    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample_value(&self, gen: &mut Gen) -> bool {
            gen.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

// --- macros -----------------------------------------------------------------

/// Define property tests. Each `fn name(pat in strategy, ...) { body }`
/// expands to a plain test running [`CASES`] deterministic cases; pass-through
/// attributes (including `#[test]`), `mut` bindings, and trailing commas are
/// supported exactly as upstream.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pn:pat in $ps:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __gen = $crate::Gen::from_name(stringify!($name));
            for __case in 0..$crate::CASES {
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pn = $crate::Strategy::sample_value(&($ps), &mut __gen);)+
                    $body;
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(e) if e == $crate::ASSUME_REJECT => {}
                    ::std::result::Result::Err(e) =>

                        panic!("property {} failed on case {}: {}", stringify!($name), __case, e),
                }
            }
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "format", args...)`: fail the
/// current generated case (with its message) without panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(left, right)` with optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// `prop_assume!(cond)`: discard the current case when the precondition
/// fails, without counting it as a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::ASSUME_REJECT.to_string());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn class_pattern_parses_ranges_and_escapes() {
        let (chars, lo, hi) = super::parse_class_pattern("[ -~\\n]{0,64}").expect("parses");
        assert_eq!((lo, hi), (0, 64));
        assert!(chars.contains(&' '));
        assert!(chars.contains(&'~'));
        assert!(chars.contains(&'\n'));
        // ' '..='~' is 95 chars, plus newline.
        assert_eq!(chars.len(), 96);
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            xs in prop::collection::vec((0u8..4, crate::bool::ANY), 1..8),
            s in "[a-c]{2,5}",
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for (v, _) in &xs {
                prop_assert!(*v < 4);
            }
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn assume_discards_cases(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }
}
