//! Offline in-tree subset of the `criterion` benchmarking API.
//!
//! The build environment has no registry access. This stub keeps the
//! workspace's `benches/` targets compiling (and smoke-runnable: each
//! registered benchmark executes its routine once so `cargo bench` still
//! exercises the code paths), but performs no timing or statistics — the
//! tracked performance artifacts come from `gpures bench`, not criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;

/// Benchmark registry entry point; methods mirror criterion 0.5's surface.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ran: false };
        f(&mut b);
        eprintln!("bench {id}: ok (smoke, untimed)");
        self
    }

    pub fn final_summary(&mut self) {}
}

pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { ran: false };
        f(&mut b);
        eprintln!("bench {}/{id}: ok (smoke, untimed)", self.name);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { ran: false };
        f(&mut b, input);
        eprintln!("bench {}/{}: ok (smoke, untimed)", self.name, id.0);
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: &str, param: impl Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Runs each routine exactly once — a smoke execution, not a measurement.
pub struct Bencher {
    ran: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let _ = routine();
        self.ran = true;
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let _ = routine(setup());
        self.ran = true;
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
    ($group:ident; $($rest:tt)*) => {
        $crate::criterion_group!($group, $($rest)*);
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let _ = $config;
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
