//! Offline in-tree subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of `rand` it actually uses: seeded `StdRng` construction
//! (`SeedableRng::seed_from_u64` / `from_seed`), uniform `gen::<T>()`,
//! `gen_range` over half-open and inclusive ranges, `gen_bool`, and
//! `SliceRandom::{shuffle, choose}`. There is deliberately NO entropy-based
//! constructor (`from_entropy` / `thread_rng`): every RNG in this workspace
//! must be explicitly seeded, which is also what the dr-lint determinism
//! passes enforce.
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — a different stream
//! than upstream's ChaCha12, but the workspace only depends on *seeded
//! determinism* and uniform-quality output, never on a specific stream.

#![forbid(unsafe_code)]

/// A source of uniformly distributed random bits.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types a uniform sample can be drawn for via [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches upstream).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range of.
/// The single blanket [`SampleRange`] impl below is what lets an untyped
/// literal like `gen_range(0..3)` unify with a `usize` use site.
pub trait SampleUniform: Sized + Copy {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = u128::sample_standard(rng) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::sample_standard(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                lo + <$t as Standard>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 — used only to expand small seeds into full RNG state.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded RNG: xoshiro256**.
    ///
    /// Not the same stream as upstream `rand`'s ChaCha12-based `StdRng`, but
    /// an equally well-distributed uniform generator; all in-tree users rely
    /// only on seeded determinism, not on a specific byte stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }
}

pub mod seq {
    use super::RngCore;

    /// Random-order operations on slices (Fisher–Yates `shuffle`, `choose`).
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_are_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
